// Package health is the cluster's temporal view: a background evaluator
// polls each cell's cumulative serve.Snapshot on a fixed tick, folds the
// deltas into per-cell rolling windows, judges the windows against SLO
// rules with hysteresis, keeps an alert-event ring, and advises the
// control plane on scaling. Where internal/obs answers "what happened to
// this request", health answers "how has this cell been doing lately" —
// and, through the advisor, "should the cluster grow or shrink".
package health

import (
	"time"
)

// CellSample is one cell's raw reading at a tick. Counters are cumulative
// (lifetime) values straight from serve.Snapshot; quantiles are the
// serving layer's point-in-time sliding-window estimates; QueueDepth is
// instantaneous. The evaluator differences the counters itself.
type CellSample struct {
	Cell int

	// Cumulative counters.
	Requests int64
	Errors   int64
	Hits     int64
	Misses   int64

	// Point-in-time latency quantiles, seconds.
	QueueWaitP50 float64
	QueueWaitP99 float64
	SolveP50     float64
	SolveP99     float64

	// Instantaneous combined queue depth (interactive + bulk).
	QueueDepth int
}

// bucket holds one tick interval's worth of activity: counter deltas plus
// the quantiles and depth sampled at the interval's end.
type bucket struct {
	requests int64
	errors   int64
	hits     int64
	misses   int64

	queueWaitP50 float64
	queueWaitP99 float64
	solveP50     float64
	solveP99     float64
	queueDepth   int

	span time.Duration // wall time this bucket covers
}

// cellWindow is one cell's rolling window: a ring of interval buckets and
// the previous cumulative sample to difference against.
type cellWindow struct {
	cell     int
	prev     CellSample
	havePrev bool

	buckets []bucket
	next    int
	filled  int // buckets holding data, ≤ len(buckets)
	resets  int64
}

func newCellWindow(cell, buckets int) *cellWindow {
	return &cellWindow{cell: cell, buckets: make([]bucket, buckets)}
}

// counterDelta differences a cumulative counter across one tick. A counter
// that went backwards means the cell restarted (cumulative counters reset
// to zero); the current value IS the activity since restart, so it becomes
// the delta — never a negative rate.
func counterDelta(cur, prev int64) (delta int64, reset bool) {
	if cur >= prev {
		return cur - prev, false
	}
	return cur, true
}

// step folds one sample into the window. The first sample for a cell only
// seeds prev: there is nothing to difference yet, so it fills no bucket.
func (cw *cellWindow) step(s CellSample, span time.Duration) {
	if !cw.havePrev {
		cw.prev, cw.havePrev = s, true
		return
	}
	var b bucket
	var reset bool
	for _, d := range []struct {
		dst       *int64
		cur, prev int64
	}{
		{&b.requests, s.Requests, cw.prev.Requests},
		{&b.errors, s.Errors, cw.prev.Errors},
		{&b.hits, s.Hits, cw.prev.Hits},
		{&b.misses, s.Misses, cw.prev.Misses},
	} {
		var r bool
		*d.dst, r = counterDelta(d.cur, d.prev)
		reset = reset || r
	}
	if reset {
		cw.resets++
	}
	// A genuinely idle tick (no completions AND an empty queue)
	// contributes zero quantiles: the serving layer's latency rings go
	// stale the moment traffic stops, and folding their last values into
	// every subsequent bucket would pin a breach on an idle cell forever.
	// A wedged cell looks different — nothing completes but the queue is
	// backed up — and keeps the stale quantiles, because that pressure
	// is real.
	if b.requests > 0 || s.QueueDepth > 0 {
		b.queueWaitP50 = s.QueueWaitP50
		b.queueWaitP99 = s.QueueWaitP99
		b.solveP50 = s.SolveP50
		b.solveP99 = s.SolveP99
	}
	b.queueDepth = s.QueueDepth
	b.span = span

	cw.buckets[cw.next] = b
	cw.next = (cw.next + 1) % len(cw.buckets)
	if cw.filled < len(cw.buckets) {
		cw.filled++
	}
	cw.prev = s
}

// WindowStats is the aggregated view of one cell's rolling window, the
// input to SLO rule evaluation and the /v1/health body.
type WindowStats struct {
	// Ticks is how many interval buckets the window currently holds;
	// SpanSeconds the wall time they cover. Both are zero until the second
	// sample for a cell arrives.
	Ticks       int     `json:"ticks"`
	SpanSeconds float64 `json:"span_seconds"`
	// Requests and Errors are window totals (deltas summed, reset-safe).
	Requests int64 `json:"requests"`
	Errors   int64 `json:"errors"`
	// RequestRate is Requests/SpanSeconds, per second.
	RequestRate float64 `json:"request_rate"`
	// ErrorRate is Errors/Requests over the window, 0 with no traffic.
	ErrorRate float64 `json:"error_rate"`
	// CacheHitRate is hits/(hits+misses) over the window, 0 with none.
	CacheHitRate float64 `json:"cache_hit_rate"`
	// Latency quantiles are the worst (max) per-tick sample in the window:
	// "queue_wait_p99 over 30s" means the p99 never cleared the bar at any
	// point in the window, which is the conservative reading for SLOs.
	QueueWaitP50 float64 `json:"queue_wait_p50_seconds"`
	QueueWaitP99 float64 `json:"queue_wait_p99_seconds"`
	SolveP50     float64 `json:"solve_p50_seconds"`
	SolveP99     float64 `json:"solve_p99_seconds"`
	// QueueDepth is the most recent instantaneous depth; QueueDepthMax the
	// worst seen in the window.
	QueueDepth    int `json:"queue_depth"`
	QueueDepthMax int `json:"queue_depth_max"`
	// CounterResets counts detected cell restarts (cumulative counters
	// moving backwards) over the window's lifetime.
	CounterResets int64 `json:"counter_resets,omitempty"`
}

// stats aggregates the ring into WindowStats. An empty window (no
// completed tick yet) returns the zero value.
func (cw *cellWindow) stats() WindowStats {
	var ws WindowStats
	ws.Ticks = cw.filled
	ws.CounterResets = cw.resets
	if cw.filled == 0 {
		return ws
	}
	var span time.Duration
	var hits, misses int64
	newest := (cw.next - 1 + len(cw.buckets)) % len(cw.buckets)
	for i := 0; i < cw.filled; i++ {
		b := &cw.buckets[(newest-i+len(cw.buckets))%len(cw.buckets)]
		span += b.span
		ws.Requests += b.requests
		ws.Errors += b.errors
		hits += b.hits
		misses += b.misses
		ws.QueueWaitP50 = max(ws.QueueWaitP50, b.queueWaitP50)
		ws.QueueWaitP99 = max(ws.QueueWaitP99, b.queueWaitP99)
		ws.SolveP50 = max(ws.SolveP50, b.solveP50)
		ws.SolveP99 = max(ws.SolveP99, b.solveP99)
		if b.queueDepth > ws.QueueDepthMax {
			ws.QueueDepthMax = b.queueDepth
		}
	}
	ws.SpanSeconds = span.Seconds()
	ws.QueueDepth = cw.buckets[newest].queueDepth
	if ws.SpanSeconds > 0 {
		ws.RequestRate = float64(ws.Requests) / ws.SpanSeconds
	}
	if ws.Requests > 0 {
		ws.ErrorRate = float64(ws.Errors) / float64(ws.Requests)
	}
	if total := hits + misses; total > 0 {
		ws.CacheHitRate = float64(hits) / float64(total)
	}
	return ws
}

// Value reads one metric out of the window for rule evaluation.
func (ws WindowStats) Value(m Metric) float64 {
	switch m {
	case MetricQueueWaitP50:
		return ws.QueueWaitP50
	case MetricQueueWaitP99:
		return ws.QueueWaitP99
	case MetricSolveP50:
		return ws.SolveP50
	case MetricSolveP99:
		return ws.SolveP99
	case MetricErrorRate:
		return ws.ErrorRate
	case MetricCacheHitRate:
		return ws.CacheHitRate
	case MetricQueueDepth:
		return float64(ws.QueueDepthMax)
	case MetricRequestRate:
		return ws.RequestRate
	}
	return 0
}
