package health

import (
	"repro/internal/cluster"
	"repro/internal/serve"
)

// sampleFrom maps one cell's serve.Snapshot onto the evaluator's raw
// reading.
func sampleFrom(cell int, s serve.Snapshot) CellSample {
	return CellSample{
		Cell:         cell,
		Requests:     s.Requests,
		Errors:       s.Errors,
		Hits:         s.Hits,
		Misses:       s.Misses,
		QueueWaitP50: s.QueueWaitP50,
		QueueWaitP99: s.QueueWaitP99,
		SolveP50:     s.SolveP50,
		SolveP99:     s.SolveP99,
		QueueDepth:   s.QueueLen + s.BulkQueueLen,
	}
}

// routerSource samples every live cell of a cluster router. Membership
// changes show up as cells appearing/disappearing between ticks, which
// the evaluator records as membership alerts.
type routerSource struct{ r *cluster.Router }

// RouterSource adapts a cluster router into an evaluator Source.
func RouterSource(r *cluster.Router) Source { return routerSource{r: r} }

func (rs routerSource) Sample() []CellSample {
	ids := rs.r.CellIDs()
	out := make([]CellSample, 0, len(ids))
	for _, id := range ids {
		c := rs.r.Cell(id)
		if c == nil { // raced a removal
			continue
		}
		out = append(out, sampleFrom(id, c.Stats()))
	}
	return out
}

// serverSource samples one standalone server as cell 0, giving flserved
// the same health surface as the cluster.
type serverSource struct{ s *serve.Server }

// ServerSource adapts a single serve.Server into an evaluator Source.
func ServerSource(s *serve.Server) Source { return serverSource{s: s} }

func (ss serverSource) Sample() []CellSample {
	return []CellSample{sampleFrom(0, ss.s.Stats())}
}
