package health

import (
	"testing"
	"time"
)

func stepValue(rs *ruleState, r Rule, v float64, requests int64) (State, bool) {
	_, changed := rs.step(r, v, requests, 3, 3, time.Unix(0, 0))
	return rs.state, changed
}

func TestHysteresisBreachAndRecover(t *testing.T) {
	r := Rule{Name: "qw", Metric: MetricQueueWaitP99, Threshold: 0.050}
	var rs ruleState

	if st, _ := stepValue(&rs, r, 0.010, 100); st != StateOK {
		t.Fatalf("within SLO: state %s, want ok", st)
	}
	// First violation degrades immediately; breach needs 3 consecutive.
	if st, changed := stepValue(&rs, r, 0.080, 100); st != StateDegraded || !changed {
		t.Fatalf("first violation: state %s changed %v, want degraded true", st, changed)
	}
	if st, _ := stepValue(&rs, r, 0.080, 100); st != StateDegraded {
		t.Fatalf("second violation: state %s, want still degraded", st)
	}
	if st, changed := stepValue(&rs, r, 0.080, 100); st != StateBreached || !changed {
		t.Fatalf("third violation: state %s changed %v, want breached true", st, changed)
	}
	// Recovery needs 3 consecutive clean ticks.
	stepValue(&rs, r, 0.010, 100)
	stepValue(&rs, r, 0.010, 100)
	if rs.state != StateBreached {
		t.Fatalf("two clean ticks: state %s, want still breached", rs.state)
	}
	if st, changed := stepValue(&rs, r, 0.010, 100); st != StateOK || !changed {
		t.Fatalf("third clean tick: state %s changed %v, want ok true", st, changed)
	}
}

// TestHysteresisFlapping drives the metric across the threshold every tick:
// the state machine must settle in degraded — neither escalating to
// breached (no 3 consecutive violations) nor bouncing back to ok (no 3
// consecutive clears), and emitting exactly one transition.
func TestHysteresisFlapping(t *testing.T) {
	r := Rule{Name: "qw", Metric: MetricQueueWaitP99, Threshold: 0.050}
	var rs ruleState
	transitions := 0
	for i := 0; i < 40; i++ {
		v := 0.080 // just over
		if i%2 == 1 {
			v = 0.030 // just under
		}
		if _, changed := stepValue(&rs, r, v, 100); changed {
			transitions++
		}
		if rs.state == StateBreached {
			t.Fatalf("tick %d: flapping must never breach", i)
		}
	}
	if rs.state != StateDegraded || transitions != 1 {
		t.Fatalf("after flapping: state %s with %d transitions, want degraded with exactly 1", rs.state, transitions)
	}
}

// TestMinRequestsGate: a violating value on a near-empty window must not
// degrade (absence of data is not an outage), and a rule tripped under
// load must clear once traffic goes away — low-traffic ticks count toward
// recovery, otherwise the advisor's idle detection would deadlock on a
// state pinned forever.
func TestMinRequestsGate(t *testing.T) {
	r := Rule{Name: "hit-floor", Metric: MetricCacheHitRate, Threshold: 0.20, Under: true, MinRequests: 50}
	var rs ruleState

	// Violating value, not enough traffic: stays ok.
	for i := 0; i < 5; i++ {
		if st, _ := stepValue(&rs, r, 0.0, 10); st != StateOK {
			t.Fatalf("low-traffic violation must not degrade, got %s", st)
		}
	}
	// Real traffic violating: degrades, then breaches.
	stepValue(&rs, r, 0.0, 500)
	stepValue(&rs, r, 0.0, 500)
	stepValue(&rs, r, 0.0, 500)
	if rs.state != StateBreached {
		t.Fatalf("sustained violation under traffic: %s, want breached", rs.state)
	}
	// Traffic disappears: the window still shows a 0 hit rate, but the
	// low-traffic ticks count as recovery.
	stepValue(&rs, r, 0.0, 0)
	stepValue(&rs, r, 0.0, 0)
	if st, _ := stepValue(&rs, r, 0.0, 0); st != StateOK {
		t.Fatalf("idle ticks must clear a tripped rule, got %s", st)
	}
}

func TestRuleOverridesHysteresisWidths(t *testing.T) {
	r := Rule{Name: "qw", Metric: MetricQueueWaitP99, Threshold: 0.050, BreachAfter: 1, ClearAfter: 1}
	var rs ruleState
	stepValue(&rs, r, 0.080, 100)
	if st, _ := stepValue(&rs, r, 0.080, 100); st != StateBreached {
		t.Fatalf("BreachAfter 1: second violation should breach, got %s", st)
	}
	if st, _ := stepValue(&rs, r, 0.010, 100); st != StateOK {
		t.Fatalf("ClearAfter 1: one clean tick should recover, got %s", st)
	}
}
