package serve

import (
	"fmt"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/fl"
)

// SolverName selects which algorithm answers a request. All solvers run
// through the same fingerprint/cache/stats pipeline; the name is part of
// the fingerprint so results never cross-contaminate between solvers.
type SolverName string

const (
	// SolverAlgorithm2 is the paper's alternating optimizer (the default;
	// the empty string is an alias).
	SolverAlgorithm2 SolverName = "algorithm2"
	// SolverScheme1 is the Yang et al. comparator: energy minimization
	// under a hard completion-time limit (deadline mode only).
	SolverScheme1 SolverName = "scheme1"
	// SolverSimplified is the linearized-Shannon baseline of ref. [3]
	// (weighted mode only).
	SolverSimplified SolverName = "simplified"
)

// normalize folds the empty alias onto the canonical name.
func (n SolverName) normalize() SolverName {
	if n == "" {
		return SolverAlgorithm2
	}
	return n
}

// Warmable reports whether the solver consumes a seeded Options.Start.
// Only Algorithm 2's alternating loop does; the baselines pick their own
// fixed starting points, so seeding them would only mislabel the Source.
// Callers migrating cache state across servers use it to avoid planting
// warm entries that could never be read.
func (n SolverName) Warmable() bool { return n.normalize() == SolverAlgorithm2 }

// solveFunc resolves the request's solver to a callable with the common
// solve signature, validating that the request's mode fits the solver.
// The default solver comes from the server config (tests override it).
func (s *Server) solveFunc(req Request) (func(*fl.System, fl.Weights, core.Options) (core.Result, error), error) {
	switch req.Solver.normalize() {
	case SolverAlgorithm2:
		return s.cfg.Solver, nil
	case SolverScheme1:
		if req.Options.Mode != core.ModeDeadline || !(req.Options.TotalDeadline > 0) {
			return nil, fmt.Errorf("solver %q requires mode \"deadline\" with a positive total deadline: %w", req.Solver, ErrBadRequest)
		}
		return scheme1Solver, nil
	case SolverSimplified:
		if req.Options.Mode == core.ModeDeadline {
			return nil, fmt.Errorf("solver %q serves only the weighted mode: %w", req.Solver, ErrBadRequest)
		}
		return simplifiedSolver, nil
	default:
		return nil, fmt.Errorf("unknown solver %q: %w", req.Solver, ErrBadRequest)
	}
}

// scheme1Solver adapts baselines.Scheme1 (allocation only) to the common
// solve signature, evaluating the full metrics at its fixed point. Like
// core's deadline mode, the reported objective is the total energy.
func scheme1Solver(s *fl.System, w fl.Weights, o core.Options) (core.Result, error) {
	a, err := baselines.Scheme1(s, o.TotalDeadline, baselines.Scheme1Options{})
	if err != nil {
		return core.Result{}, err
	}
	m := s.Evaluate(a)
	return core.Result{
		Allocation:    a,
		RoundDeadline: o.TotalDeadline / s.GlobalRounds,
		Metrics:       m,
		Objective:     m.TotalEnergy,
		Converged:     true,
	}, nil
}

// simplifiedSolver adapts baselines.SimplifiedShannon to the common solve
// signature.
func simplifiedSolver(s *fl.System, w fl.Weights, _ core.Options) (core.Result, error) {
	a, err := baselines.SimplifiedShannon(s, w)
	if err != nil {
		return core.Result{}, err
	}
	m := s.Evaluate(a)
	return core.Result{
		Allocation:    a,
		RoundDeadline: m.RoundTime,
		Metrics:       m,
		Objective:     s.Objective(w, a),
		Converged:     true,
	}, nil
}
