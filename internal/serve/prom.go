package serve

import (
	"fmt"
	"io"
)

// PromContentType is the Prometheus text exposition content type.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// PromWriter emits the Prometheus text exposition format. It writes each
// metric's # HELP/# TYPE header exactly once even when several labelsets
// of the same name are emitted (the per-cell series of a cluster), which
// the format requires.
type PromWriter struct {
	w    io.Writer
	seen map[string]bool
	err  error
}

// NewPromWriter wraps w. Write errors are sticky and reported by Err.
func NewPromWriter(w io.Writer) *PromWriter {
	return &PromWriter{w: w, seen: make(map[string]bool)}
}

// Err returns the first write error, if any.
func (p *PromWriter) Err() error { return p.err }

// Counter emits one counter sample. labels is the raw label list without
// braces (e.g. `cell="3"`), empty for none.
func (p *PromWriter) Counter(name, help, labels string, v float64) {
	p.sample(name, help, "counter", labels, v)
}

// Gauge emits one gauge sample.
func (p *PromWriter) Gauge(name, help, labels string, v float64) {
	p.sample(name, help, "gauge", labels, v)
}

func (p *PromWriter) sample(name, help, kind, labels string, v float64) {
	if p.err != nil {
		return
	}
	if !p.seen[name] {
		p.seen[name] = true
		if _, err := fmt.Fprintf(p.w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, kind); err != nil {
			p.err = err
			return
		}
	}
	series := name
	if labels != "" {
		series = name + "{" + labels + "}"
	}
	if _, err := fmt.Fprintf(p.w, "%s %g\n", series, v); err != nil {
		p.err = err
	}
}

// Histogram emits one full histogram: cumulative _bucket series over the
// given bounds (the final +Inf bucket is appended when bounds omit it),
// plus _sum and _count. buckets holds raw per-bucket counts aligned with
// bounds; labels is the raw label list without braces.
func (p *PromWriter) Histogram(name, help, labels string, bounds []string, buckets []int64, sum float64, count int64) {
	if p.err != nil {
		return
	}
	if !p.seen[name] {
		p.seen[name] = true
		if _, err := fmt.Fprintf(p.w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name); err != nil {
			p.err = err
			return
		}
	}
	sep := ""
	if labels != "" {
		sep = ","
	}
	var cum int64
	sawInf := false
	for i, c := range buckets {
		cum += c
		le := "+Inf"
		if i < len(bounds) {
			le = bounds[i]
		}
		if le == "+Inf" {
			sawInf = true
		}
		if _, err := fmt.Fprintf(p.w, "%s_bucket{%s%sle=%q} %d\n", name, labels, sep, le, cum); err != nil {
			p.err = err
			return
		}
	}
	if !sawInf {
		if _, err := fmt.Fprintf(p.w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, cum); err != nil {
			p.err = err
			return
		}
	}
	suffix := ""
	if labels != "" {
		suffix = "{" + labels + "}"
	}
	if _, err := fmt.Fprintf(p.w, "%s_sum%s %g\n%s_count%s %d\n", name, suffix, sum, name, suffix, count); err != nil {
		p.err = err
	}
}

// WritePrometheus emits the snapshot's counters, occupancy gauges and
// latency quantiles under the given metric prefix (e.g. "flserve") and
// label list (without braces; empty for none). Quantile series get a
// `quantile` label appended, summary-style.
func (s Snapshot) WritePrometheus(p *PromWriter, prefix, labels string) {
	counters := []struct {
		name, help string
		v          int64
	}{
		{"requests_total", "Solve requests received, whatever the outcome.", s.Requests},
		{"cache_hits_total", "Requests answered from the solution cache.", s.Hits},
		{"cache_misses_total", "Requests whose exact fingerprint was absent.", s.Misses},
		{"warm_starts_total", "Solves seeded from a topology-bucket neighbour.", s.WarmStarts},
		{"cold_solves_total", "Solves started from scratch.", s.ColdSolves},
		{"deduped_total", "Requests joined onto an identical in-flight solve.", s.Deduped},
		{"rejected_total", "Requests shed because the queue was full.", s.Rejected},
		{"errors_total", "Requests that ended in a solver or validation error.", s.Errors},
		{"batch_requests_total", "SolveBatch calls received.", s.BatchRequests},
		{"batch_items_total", "Instances carried by SolveBatch calls.", s.BatchItems},
	}
	for _, c := range counters {
		p.Counter(prefix+"_"+c.name, c.help, labels, float64(c.v))
	}
	p.Gauge(prefix+"_cache_entries", "Current solution-cache occupancy.", labels, float64(s.CacheEntries))
	p.Gauge(prefix+"_warm_entries", "Current warm-start index occupancy.", labels, float64(s.WarmEntries))
	p.Gauge(prefix+"_queue_len", "Instantaneous interactive-queue depth.", labels, float64(s.QueueLen))
	p.Gauge(prefix+"_bulk_queue_len", "Instantaneous bulk-queue depth.", labels, float64(s.BulkQueueLen))
	p.Gauge(prefix+"_tracked_buckets", "Topology buckets with per-bucket hit-rate counters.", labels, float64(s.TrackedBuckets))
	for _, b := range s.Buckets {
		bl := `bucket="` + b.Bucket + `"`
		if labels != "" {
			bl = labels + "," + bl
		}
		p.Counter(prefix+"_bucket_hits_total", "Cache hits in the busiest topology buckets.", bl, float64(b.Hits))
		p.Counter(prefix+"_bucket_misses_total", "Cache misses in the busiest topology buckets.", bl, float64(b.Misses))
		p.Gauge(prefix+"_bucket_hit_rate", "Cache hit rate in the busiest topology buckets.", bl, b.HitRate)
	}
	for _, qv := range []struct {
		q string
		v float64
	}{{"0.5", s.SolveP50}, {"0.99", s.SolveP99}} {
		ql := `quantile="` + qv.q + `"`
		if labels != "" {
			ql = labels + "," + ql
		}
		p.Gauge(prefix+"_solve_latency_seconds", "Recent solve latency quantiles (cache hits excluded).", ql, qv.v)
	}
	for _, qv := range []struct {
		q string
		v float64
	}{{"0.5", s.CacheHitP50}, {"0.99", s.CacheHitP99}} {
		ql := `quantile="` + qv.q + `"`
		if labels != "" {
			ql = labels + "," + ql
		}
		p.Gauge(prefix+"_cache_hit_latency_seconds", "Recent cache-hit path latency quantiles (fingerprint + lookup).", ql, qv.v)
	}
	for _, qv := range []struct {
		q string
		v float64
	}{{"0.5", s.QueueWaitP50}, {"0.99", s.QueueWaitP99}} {
		ql := `quantile="` + qv.q + `"`
		if labels != "" {
			ql = labels + "," + ql
		}
		p.Gauge(prefix+"_queue_wait_seconds", "Recent enqueue-to-dequeue wait quantiles.", ql, qv.v)
	}
	s.Convergence.writePrometheus(p, prefix, labels)
}
