package serve

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
)

func TestSolverFieldSelectsBaselines(t *testing.T) {
	s := testSystem(t, 8, 1)
	srv := New(Config{Workers: 2})
	defer srv.Close()

	// Algorithm 2 and the simplified baseline on the same instance: both
	// serve, and the simplified answer is never better than the paper's.
	alg2, err := srv.Solve(context.Background(), Request{System: s, Weights: balanced()})
	if err != nil {
		t.Fatal(err)
	}
	simp, err := srv.Solve(context.Background(), Request{System: s, Weights: balanced(), Solver: SolverSimplified})
	if err != nil {
		t.Fatal(err)
	}
	if simp.Source != SourceCold {
		t.Fatalf("first simplified solve source %q, want cold (distinct fingerprint from algorithm2)", simp.Source)
	}
	if simp.Solver != SolverSimplified {
		t.Fatalf("response solver %q, want %q", simp.Solver, SolverSimplified)
	}
	if err := s.Validate(simp.Result.Allocation, 1e-6); err != nil {
		t.Fatalf("simplified allocation infeasible: %v", err)
	}
	if simp.Result.Objective < alg2.Result.Objective*(1-1e-9) {
		t.Fatalf("simplified objective %g beats Algorithm 2's %g", simp.Result.Objective, alg2.Result.Objective)
	}

	// Scheme 1 under a loose deadline.
	dl := core.Options{Mode: core.ModeDeadline, TotalDeadline: 500}
	sch, err := srv.Solve(context.Background(), Request{System: s, Weights: balanced(), Options: dl, Solver: SolverScheme1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.ValidateDeadline(sch.Result.Allocation, 500/s.GlobalRounds, 1e-6); err != nil {
		t.Fatalf("scheme1 allocation violates its deadline: %v", err)
	}
}

func TestSolverFieldKeysTheCache(t *testing.T) {
	s := testSystem(t, 6, 1)
	srv := New(Config{Workers: 2})
	defer srv.Close()

	first, err := srv.Solve(context.Background(), Request{System: s, Weights: balanced()})
	if err != nil {
		t.Fatal(err)
	}
	// The same instance under another solver must MISS: a shared entry
	// would hand out the wrong algorithm's answer.
	other, err := srv.Solve(context.Background(), Request{System: s, Weights: balanced(), Solver: SolverSimplified})
	if err != nil {
		t.Fatal(err)
	}
	if other.Source == SourceCache {
		t.Fatal("simplified request hit algorithm2's cache entry")
	}
	if other.Fingerprint.Exact == first.Fingerprint.Exact {
		t.Fatal("solver choice did not change the exact fingerprint")
	}
	if other.Fingerprint.Topo == first.Fingerprint.Topo {
		t.Fatal("solver choice did not change the topology bucket")
	}

	// Each solver hits its own entry on replay; the explicit default name
	// aliases the empty one.
	for _, req := range []Request{
		{System: s, Weights: balanced(), Solver: SolverAlgorithm2},
		{System: s, Weights: balanced(), Solver: SolverSimplified},
	} {
		resp, err := srv.Solve(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Source != SourceCache {
			t.Fatalf("solver %q replay source %q, want cache", req.Solver, resp.Source)
		}
	}
}

func TestSolverValidation(t *testing.T) {
	s := testSystem(t, 4, 1)
	srv := New(Config{Workers: 1})
	defer srv.Close()

	cases := map[string]Request{
		"unknown solver":           {System: s, Weights: balanced(), Solver: "newton"},
		"scheme1 without deadline": {System: s, Weights: balanced(), Solver: SolverScheme1},
		"simplified with deadline": {System: s, Weights: balanced(), Solver: SolverSimplified,
			Options: core.Options{Mode: core.ModeDeadline, TotalDeadline: 100}},
	}
	for name, req := range cases {
		if _, err := srv.Solve(context.Background(), req); !errors.Is(err, ErrBadRequest) {
			t.Errorf("%s: err %v, want ErrBadRequest", name, err)
		}
	}
}

func TestHTTPSolverField(t *testing.T) {
	s := testSystem(t, 6, 1)
	srv := New(Config{Workers: 2})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	req := SolveRequestJSON{System: SystemToJSON(s), Mode: "deadline", TotalDeadlineS: 500, Solver: "scheme1"}
	req.Weights.W1, req.Weights.W2 = 1, 0
	body, _ := json.Marshal(req)
	resp, out := postSolve(t, ts.URL, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scheme1 over HTTP: status %d", resp.StatusCode)
	}
	if out.Solver != "scheme1" {
		t.Fatalf("response solver %q, want scheme1", out.Solver)
	}
	if out.TotalTimeS > 500*(1+1e-6) {
		t.Fatalf("scheme1 exceeded its deadline: %g s", out.TotalTimeS)
	}

	// Unknown solver maps to 400.
	req.Solver = "nope"
	body, _ = json.Marshal(req)
	resp, _ = postSolve(t, ts.URL, body)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown solver: status %d, want 400", resp.StatusCode)
	}
}

func TestStatsExposeCacheOccupancy(t *testing.T) {
	s := testSystem(t, 6, 1)
	srv := New(Config{Workers: 2})
	defer srv.Close()

	if st := srv.Stats(); st.CacheEntries != 0 || st.WarmEntries != 0 {
		t.Fatalf("fresh server occupancy %d/%d, want 0/0", st.CacheEntries, st.WarmEntries)
	}
	if _, err := srv.Solve(context.Background(), Request{System: s, Weights: balanced()}); err != nil {
		t.Fatal(err)
	}
	st := srv.Stats()
	if st.CacheEntries != 1 || st.WarmEntries != 1 {
		t.Fatalf("after one solve occupancy %d/%d, want 1/1", st.CacheEntries, st.WarmEntries)
	}

	// And over the wire.
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.CacheEntries != 1 {
		t.Fatalf("wire cache_entries %d, want 1", snap.CacheEntries)
	}
}

func TestHTTPMetricsEndpoint(t *testing.T) {
	s := testSystem(t, 6, 1)
	srv := New(Config{Workers: 2})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	req := SolveRequestJSON{System: SystemToJSON(s)}
	req.Weights.W1, req.Weights.W2 = 0.5, 0.5
	body, _ := json.Marshal(req)
	for i := 0; i < 2; i++ {
		if resp, _ := postSolve(t, ts.URL, body); resp.StatusCode != http.StatusOK {
			t.Fatalf("solve %d failed", i)
		}
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q, want text/plain exposition", ct)
	}
	text, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	got := string(text)
	for _, want := range []string{
		"# TYPE flserve_requests_total counter",
		"flserve_requests_total 2",
		"flserve_cache_hits_total 1",
		"flserve_cold_solves_total 1",
		"flserve_cache_entries 1",
		`flserve_solve_latency_seconds{quantile="0.5"}`,
		`flserve_solve_latency_seconds{quantile="0.99"}`,
	} {
		if !strings.Contains(got, want) {
			t.Errorf("metrics missing %q\n%s", want, got)
		}
	}
}

// TestSolveRejectsSolverBeforeQueueing pins the error accounting: a bad
// solver bumps the error counter without touching hit/miss counters.
func TestSolveRejectsSolverBeforeQueueing(t *testing.T) {
	srv := New(Config{Workers: 1})
	defer srv.Close()
	s := testSystem(t, 4, 1)
	if _, err := srv.Solve(context.Background(), Request{System: s, Weights: balanced(), Solver: "bogus"}); err == nil {
		t.Fatal("bogus solver accepted")
	}
	st := srv.Stats()
	if st.Errors != 1 || st.Misses != 0 || st.Hits != 0 {
		t.Fatalf("stats after rejected solver: %+v", st)
	}
}
