package serve

import (
	"math"
	"testing"

	"repro/internal/fl"
)

// feasibleish returns a plausible cached allocation for s: powers and
// frequencies at their boxes' midpoints, bandwidth an equal split.
func feasibleish(s *fl.System) fl.Allocation {
	a := fl.NewAllocation(s.N())
	for i, d := range s.Devices {
		a.Power[i] = (d.PMin + d.PMax) / 2
		a.Freq[i] = (d.FMin + d.FMax) / 2
		a.Bandwidth[i] = s.Bandwidth / float64(s.N())
	}
	return a
}

func TestSanitizeStartRepairsEdgeResidue(t *testing.T) {
	s := testSystem(t, 6, 1)
	a := feasibleish(s)
	// Solver-style residue: slightly outside the boxes and over budget.
	a.Power[0] = s.Devices[0].PMax * (1 + 1e-9)
	a.Freq[1] = s.Devices[1].FMin * (1 - 1e-9)
	for i := range a.Bandwidth {
		a.Bandwidth[i] *= 1 + 1e-9
	}
	out, ok := sanitizeStart(s, a)
	if !ok {
		t.Fatal("repairable allocation rejected")
	}
	if err := s.Validate(out, 0); err != nil {
		t.Fatalf("sanitized start infeasible at zero tolerance: %v", err)
	}
	// The input is never mutated (the cached entry stays pristine).
	if a.Power[0] <= s.Devices[0].PMax {
		t.Fatal("sanitizeStart mutated its input")
	}
}

func TestSanitizeStartRejectsWrongSize(t *testing.T) {
	s := testSystem(t, 6, 1)
	long := feasibleish(testSystem(t, 8, 1))
	if _, ok := sanitizeStart(s, long); ok {
		t.Fatal("allocation longer than the system accepted")
	}
	short := feasibleish(testSystem(t, 4, 1))
	if _, ok := sanitizeStart(s, short); ok {
		t.Fatal("allocation shorter than the system accepted")
	}
	if _, ok := sanitizeStart(s, fl.Allocation{}); ok {
		t.Fatal("empty allocation accepted")
	}
}

func TestSanitizeStartRejectsAllZero(t *testing.T) {
	s := testSystem(t, 6, 1)
	if _, ok := sanitizeStart(s, fl.NewAllocation(s.N())); ok {
		t.Fatal("all-zero allocation accepted (zero bandwidth cannot be repaired)")
	}
}

func TestSanitizeStartRejectsNaNAndInf(t *testing.T) {
	s := testSystem(t, 6, 1)

	nanPower := feasibleish(s)
	nanPower.Power[2] = math.NaN()
	if _, ok := sanitizeStart(s, nanPower); ok {
		t.Fatal("NaN power accepted")
	}

	nanBand := feasibleish(s)
	nanBand.Bandwidth[3] = math.NaN()
	if _, ok := sanitizeStart(s, nanBand); ok {
		t.Fatal("NaN bandwidth accepted")
	}

	infBand := feasibleish(s)
	infBand.Bandwidth[0] = math.Inf(1)
	if _, ok := sanitizeStart(s, infBand); ok {
		t.Fatal("infinite bandwidth accepted")
	}

	negBand := feasibleish(s)
	negBand.Bandwidth[1] = -1
	if _, ok := sanitizeStart(s, negBand); ok {
		t.Fatal("negative bandwidth accepted")
	}

	// Infinite power and frequency, by contrast, clamp cleanly to the box
	// tops — an aggressive cached allocation is still a usable seed.
	infPF := feasibleish(s)
	infPF.Power[0] = math.Inf(1)
	infPF.Freq[0] = math.Inf(1)
	out, ok := sanitizeStart(s, infPF)
	if !ok {
		t.Fatal("clampable infinite power/freq rejected")
	}
	if out.Power[0] != s.Devices[0].PMax || out.Freq[0] != s.Devices[0].FMax {
		t.Fatalf("infinite power/freq clamped to (%g, %g), want box tops (%g, %g)",
			out.Power[0], out.Freq[0], s.Devices[0].PMax, s.Devices[0].FMax)
	}
}

func TestSanitizeStartRescalesOverBudget(t *testing.T) {
	s := testSystem(t, 6, 1)
	a := feasibleish(s)
	for i := range a.Bandwidth {
		a.Bandwidth[i] *= 3 // 3x over the budget
	}
	out, ok := sanitizeStart(s, a)
	if !ok {
		t.Fatal("over-budget allocation rejected instead of rescaled")
	}
	var sum float64
	for _, b := range out.Bandwidth {
		sum += b
	}
	if sum > s.Bandwidth {
		t.Fatalf("rescaled sum %g still exceeds budget %g", sum, s.Bandwidth)
	}
}
