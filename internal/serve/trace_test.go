package serve

import (
	"context"
	"testing"

	"repro/internal/obs"
)

func phases(spans []obs.Span, phase string) []obs.Span {
	var out []obs.Span
	for _, s := range spans {
		if s.Phase == phase {
			out = append(out, s)
		}
	}
	return out
}

// TestSolveTraceLifecycle runs a cold solve and an exact replay under
// traces and checks the server recorded every lifecycle phase, stamped
// the trace ID on both responses, and fed the hit into the cache-hit
// latency window (the satellite cache_hit_p50/p99 stats).
func TestSolveTraceLifecycle(t *testing.T) {
	s := testSystem(t, 8, 7)
	srv := New(Config{Workers: 2})
	defer srv.Close()
	col := obs.NewCollector(obs.Config{SampleEvery: 1, SlowThreshold: -1})

	ctx, tr := col.StartTrace(context.Background())
	first, err := srv.Solve(ctx, Request{System: s, Weights: balanced()})
	if err != nil {
		t.Fatal(err)
	}
	tr.Finish()
	if first.TraceID != tr.ID() {
		t.Fatalf("cold response trace ID %q, want %q", first.TraceID, tr.ID())
	}
	spans := tr.Spans()
	for _, phase := range []string{obs.PhaseFingerprint, obs.PhaseCacheLookup, obs.PhaseQueueWait, obs.PhaseSolve} {
		if len(phases(spans, phase)) == 0 {
			t.Fatalf("cold solve trace missing %q: %+v", phase, spans)
		}
	}
	if lk := phases(spans, obs.PhaseCacheLookup); lk[0].Detail != "miss" {
		t.Fatalf("cold cache_lookup detail %q, want miss", lk[0].Detail)
	}
	if sv := phases(spans, obs.PhaseSolve); sv[0].Detail != "cold" {
		t.Fatalf("cold solve detail %q, want cold", sv[0].Detail)
	}

	ctx, tr = col.StartTrace(context.Background())
	second, err := srv.Solve(ctx, Request{System: s, Weights: balanced()})
	if err != nil {
		t.Fatal(err)
	}
	tr.Finish()
	if second.Source != SourceCache {
		t.Fatalf("replay source %q, want cache", second.Source)
	}
	if second.TraceID != tr.ID() {
		t.Fatalf("hit response trace ID %q, want %q", second.TraceID, tr.ID())
	}
	if lk := phases(tr.Spans(), obs.PhaseCacheLookup); len(lk) != 1 || lk[0].Detail != "hit" {
		t.Fatalf("hit cache_lookup spans %+v, want one with detail hit", lk)
	}

	st := srv.Stats()
	if st.CacheHitP50 <= 0 || st.CacheHitP99 < st.CacheHitP50 {
		t.Fatalf("cache-hit quantiles p50=%g p99=%g, want 0 < p50 <= p99", st.CacheHitP50, st.CacheHitP99)
	}
	if len(srv.CacheHitLatencies()) != 1 {
		t.Fatalf("cache-hit window holds %d samples, want 1", len(srv.CacheHitLatencies()))
	}
}

// TestSolveUntracedNoOverheadPath checks the nil-trace fast path stays
// inert: no trace ID on the response and no samples beyond the hit window.
func TestSolveUntracedNoOverheadPath(t *testing.T) {
	s := testSystem(t, 6, 8)
	srv := New(Config{Workers: 2})
	defer srv.Close()
	resp, err := srv.Solve(context.Background(), Request{System: s, Weights: balanced()})
	if err != nil {
		t.Fatal(err)
	}
	if resp.TraceID != "" {
		t.Fatalf("untraced response carries trace ID %q", resp.TraceID)
	}
}
