package serve

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// latencyWindow is how many recent solve latencies the quantile estimator
// retains. A power of two keeps the ring index cheap.
const latencyWindow = 1024

// Stats aggregates the server's counters. Counters are updated atomically
// on the request path; quantiles are computed on demand from a sliding
// window of recent solve latencies.
type Stats struct {
	requests   atomic.Int64
	hits       atomic.Int64
	misses     atomic.Int64
	warmStarts atomic.Int64
	coldSolves atomic.Int64
	deduped    atomic.Int64
	rejected   atomic.Int64
	errors     atomic.Int64

	mu    sync.Mutex
	ring  [latencyWindow]time.Duration
	count int64 // total latencies ever recorded
}

func (st *Stats) recordLatency(d time.Duration) {
	st.mu.Lock()
	st.ring[st.count%latencyWindow] = d
	st.count++
	st.mu.Unlock()
}

// Snapshot is a consistent point-in-time copy of the counters, shaped for
// JSON encoding by the /v1/stats endpoint.
type Snapshot struct {
	// Requests counts every Solve call, whatever its outcome.
	Requests int64 `json:"requests"`
	// Hits are requests answered from the cache without solving.
	Hits int64 `json:"cache_hits"`
	// Misses are requests whose exact fingerprint was absent.
	Misses int64 `json:"cache_misses"`
	// WarmStarts are solves seeded from a topology-bucket neighbour.
	WarmStarts int64 `json:"warm_starts"`
	// ColdSolves are solves started from scratch.
	ColdSolves int64 `json:"cold_solves"`
	// Deduped are requests that piggybacked on an identical in-flight solve.
	Deduped int64 `json:"deduped"`
	// Rejected are requests refused because the queue was full.
	Rejected int64 `json:"rejected"`
	// Errors are requests that ended in a solver or validation error.
	Errors int64 `json:"errors"`
	// SolveP50 and SolveP99 are quantiles of recent solve latencies in
	// seconds (cache hits excluded; zero until the first solve completes).
	SolveP50 float64 `json:"solve_p50_seconds"`
	SolveP99 float64 `json:"solve_p99_seconds"`
	// CacheEntries is the current solution-cache occupancy (filled by
	// Server.Stats; Stats itself does not know the cache).
	CacheEntries int `json:"cache_entries"`
	// WarmEntries is the current warm-start index occupancy.
	WarmEntries int `json:"warm_entries"`
}

// Snapshot returns the current counter values and latency quantiles.
func (st *Stats) Snapshot() Snapshot {
	s := Snapshot{
		Requests:   st.requests.Load(),
		Hits:       st.hits.Load(),
		Misses:     st.misses.Load(),
		WarmStarts: st.warmStarts.Load(),
		ColdSolves: st.coldSolves.Load(),
		Deduped:    st.deduped.Load(),
		Rejected:   st.rejected.Load(),
		Errors:     st.errors.Load(),
	}
	if lat := st.latencies(); len(lat) > 0 {
		s.SolveP50, s.SolveP99 = LatencyQuantiles(lat)
	}
	return s
}

// latencies copies the recent-latency window (unsorted).
func (st *Stats) latencies() []time.Duration {
	st.mu.Lock()
	defer st.mu.Unlock()
	n := st.count
	if n > latencyWindow {
		n = latencyWindow
	}
	lat := make([]time.Duration, n)
	copy(lat, st.ring[:n])
	return lat
}

// LatencyQuantiles reports the p50 and p99 of a latency sample in seconds
// (zeros for an empty sample). The sample is sorted in place. Cluster
// routers use it to merge the windows of several servers into one
// cluster-wide quantile pair.
func LatencyQuantiles(lat []time.Duration) (p50, p99 float64) {
	if len(lat) == 0 {
		return 0, 0
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	return quantile(lat, 0.50).Seconds(), quantile(lat, 0.99).Seconds()
}

// quantile reads the q-quantile from an ascending slice by nearest rank
// (ceil(q*n) - 1), which keeps upper quantiles honest for small samples:
// the p99 of two values is the larger one, not the smaller.
func quantile(sorted []time.Duration, q float64) time.Duration {
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
