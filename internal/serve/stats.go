package serve

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// latencyWindow is how many recent solve latencies the quantile estimator
// retains. A power of two keeps the ring index cheap.
const latencyWindow = 1024

// maxTrackedBuckets bounds the per-topology-bucket counters (summed over
// shards); beyond it an arbitrary bucket's counters are evicted, like the
// warm index — the per-bucket view is an observability aid, not a source
// of truth.
const maxTrackedBuckets = 1024

// bucketStatShards spreads the per-bucket maps over independently locked
// shards so tracking stays off the request path's critical section (the
// other counters are atomics; one global mutex here would serialize the
// microsecond cache-hit path across workers).
const bucketStatShards = 16

// topBuckets is how many buckets (by request volume) a Snapshot carries.
const topBuckets = 8

// bucketEventKind tags one per-bucket counter update.
type bucketEventKind int

const (
	bucketHit bucketEventKind = iota
	bucketMiss
	bucketWarm
	bucketCold
)

// bucketCounters tracks one topology bucket's pipeline outcomes.
type bucketCounters struct {
	hits, misses int64
	warm, cold   int64
}

// Stats aggregates the server's counters. Counters are updated atomically
// on the request path; quantiles are computed on demand from a sliding
// window of recent solve latencies.
type Stats struct {
	requests   atomic.Int64
	hits       atomic.Int64
	misses     atomic.Int64
	warmStarts atomic.Int64
	coldSolves atomic.Int64
	deduped    atomic.Int64
	rejected   atomic.Int64
	errors     atomic.Int64
	batchReqs  atomic.Int64
	batchItems atomic.Int64

	mu    sync.Mutex
	ring  [latencyWindow]time.Duration
	count int64 // total latencies ever recorded

	// Cache hits get their own window: their microsecond latencies would
	// drown in the solve ring, and the solve quantiles would lie about
	// solver speed if hits diluted them.
	hitMu    sync.Mutex
	hitRing  [latencyWindow]time.Duration
	hitCount int64

	// Queue wait (enqueue→dequeue) gets a third window: it is the load
	// signal the health layer scales on, and mixing it into solve time
	// would conflate "solver is slow" with "queue is deep".
	qwMu    sync.Mutex
	qwRing  [latencyWindow]time.Duration
	qwCount int64

	buckets [bucketStatShards]bucketShard

	// conv is the solver convergence observatory (see converge.go),
	// recorded once per completed solve.
	conv convStats
}

type bucketShard struct {
	mu sync.Mutex
	m  map[uint64]*bucketCounters
}

// bucketEvent updates one topology bucket's counters (sharded, bounded;
// see maxTrackedBuckets).
func (st *Stats) bucketEvent(topo uint64, kind bucketEventKind) {
	sh := &st.buckets[topo%bucketStatShards]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.m == nil {
		sh.m = make(map[uint64]*bucketCounters)
	}
	bc, ok := sh.m[topo]
	if !ok {
		if len(sh.m) >= maxTrackedBuckets/bucketStatShards {
			for k := range sh.m {
				delete(sh.m, k)
				break
			}
		}
		bc = &bucketCounters{}
		sh.m[topo] = bc
	}
	switch kind {
	case bucketHit:
		bc.hits++
	case bucketMiss:
		bc.misses++
	case bucketWarm:
		bc.warm++
	case bucketCold:
		bc.cold++
	}
}

func (st *Stats) recordLatency(d time.Duration) {
	st.mu.Lock()
	st.ring[st.count%latencyWindow] = d
	st.count++
	st.mu.Unlock()
}

func (st *Stats) recordHitLatency(d time.Duration) {
	st.hitMu.Lock()
	st.hitRing[st.hitCount%latencyWindow] = d
	st.hitCount++
	st.hitMu.Unlock()
}

func (st *Stats) recordQueueWait(d time.Duration) {
	st.qwMu.Lock()
	st.qwRing[st.qwCount%latencyWindow] = d
	st.qwCount++
	st.qwMu.Unlock()
}

// Snapshot is a consistent point-in-time copy of the counters, shaped for
// JSON encoding by the /v1/stats endpoint.
type Snapshot struct {
	// Requests counts every Solve call, whatever its outcome.
	Requests int64 `json:"requests"`
	// Hits are requests answered from the cache without solving.
	Hits int64 `json:"cache_hits"`
	// Misses are requests whose exact fingerprint was absent.
	Misses int64 `json:"cache_misses"`
	// WarmStarts are solves seeded from a topology-bucket neighbour.
	WarmStarts int64 `json:"warm_starts"`
	// ColdSolves are solves started from scratch.
	ColdSolves int64 `json:"cold_solves"`
	// Deduped are requests that piggybacked on an identical in-flight solve.
	Deduped int64 `json:"deduped"`
	// Rejected are requests refused because the queue was full.
	Rejected int64 `json:"rejected"`
	// Errors are requests that ended in a solver or validation error.
	Errors int64 `json:"errors"`
	// SolveP50 and SolveP99 are quantiles of recent solve latencies in
	// seconds (cache hits excluded; zero until the first solve completes).
	SolveP50 float64 `json:"solve_p50_seconds"`
	SolveP99 float64 `json:"solve_p99_seconds"`
	// CacheHitP50 and CacheHitP99 are quantiles of the cache-hit path's
	// own latency window (fingerprint + lookup; zero until the first hit).
	CacheHitP50 float64 `json:"cache_hit_p50_seconds"`
	CacheHitP99 float64 `json:"cache_hit_p99_seconds"`
	// QueueWaitP50 and QueueWaitP99 are quantiles of recent enqueue→dequeue
	// waits in seconds — the health layer's primary scaling signal.
	QueueWaitP50 float64 `json:"queue_wait_p50_seconds"`
	QueueWaitP99 float64 `json:"queue_wait_p99_seconds"`
	// QueueLen and BulkQueueLen are the instantaneous depths of the
	// interactive and bulk queues (filled by Server.Stats).
	QueueLen     int `json:"queue_len"`
	BulkQueueLen int `json:"bulk_queue_len"`
	// CacheEntries is the current solution-cache occupancy (filled by
	// Server.Stats; Stats itself does not know the cache).
	CacheEntries int `json:"cache_entries"`
	// WarmEntries is the current warm-start index occupancy.
	WarmEntries int `json:"warm_entries"`
	// BatchRequests counts SolveBatch calls; BatchItems counts the
	// instances they carried (each item also counts in Requests).
	BatchRequests int64 `json:"batch_requests"`
	BatchItems    int64 `json:"batch_items"`
	// TrackedBuckets is how many topology buckets have per-bucket hit-rate
	// counters (bounded; see Buckets for the busiest ones).
	TrackedBuckets int `json:"tracked_buckets"`
	// Buckets lists the busiest topology buckets by request volume with
	// their cache hit rates, busiest first.
	Buckets []BucketSnapshot `json:"buckets,omitempty"`
	// Convergence is the solver convergence observatory: Newton/outer
	// iteration histograms per serving path, dual-seed certificate
	// outcomes, bisection bracket provenance and widths, and sanitization
	// rejections.
	Convergence ConvergenceJSON `json:"convergence"`
}

// BucketSnapshot is one topology bucket's hit-rate view.
type BucketSnapshot struct {
	// Bucket is the topology-bucket hash in hex (matches the fingerprint's
	// Topo field).
	Bucket string `json:"bucket"`
	// Hits and Misses count exact-fingerprint cache outcomes of requests
	// landing in this bucket.
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	// WarmStarts and ColdSolves split the misses by how they solved.
	WarmStarts int64 `json:"warm_starts"`
	ColdSolves int64 `json:"cold_solves"`
	// HitRate is Hits/(Hits+Misses), 0 for an untouched bucket.
	HitRate float64 `json:"hit_rate"`
}

// Snapshot returns the current counter values and latency quantiles.
func (st *Stats) Snapshot() Snapshot {
	s := Snapshot{
		Requests:   st.requests.Load(),
		Hits:       st.hits.Load(),
		Misses:     st.misses.Load(),
		WarmStarts: st.warmStarts.Load(),
		ColdSolves: st.coldSolves.Load(),
		Deduped:    st.deduped.Load(),
		Rejected:   st.rejected.Load(),
		Errors:     st.errors.Load(),

		BatchRequests: st.batchReqs.Load(),
		BatchItems:    st.batchItems.Load(),
	}
	if lat := st.latencies(); len(lat) > 0 {
		s.SolveP50, s.SolveP99 = LatencyQuantiles(lat)
	}
	if lat := st.hitLatencies(); len(lat) > 0 {
		s.CacheHitP50, s.CacheHitP99 = LatencyQuantiles(lat)
	}
	if lat := st.queueWaitLatencies(); len(lat) > 0 {
		s.QueueWaitP50, s.QueueWaitP99 = LatencyQuantiles(lat)
	}
	s.TrackedBuckets, s.Buckets = st.bucketSnapshots()
	s.Convergence = st.conv.snapshot()
	return s
}

// bucketSnapshots returns the tracked-bucket count and the busiest buckets
// (by hits+misses), busiest first.
func (st *Stats) bucketSnapshots() (int, []BucketSnapshot) {
	var out []BucketSnapshot
	for i := range st.buckets {
		sh := &st.buckets[i]
		sh.mu.Lock()
		for topo, bc := range sh.m {
			b := BucketSnapshot{
				Bucket:     fmt.Sprintf("%016x", topo),
				Hits:       bc.hits,
				Misses:     bc.misses,
				WarmStarts: bc.warm,
				ColdSolves: bc.cold,
			}
			if total := bc.hits + bc.misses; total > 0 {
				b.HitRate = float64(bc.hits) / float64(total)
			}
			out = append(out, b)
		}
		sh.mu.Unlock()
	}
	if len(out) == 0 {
		return 0, nil
	}
	sort.Slice(out, func(i, j int) bool {
		ri, rj := out[i].Hits+out[i].Misses, out[j].Hits+out[j].Misses
		if ri != rj {
			return ri > rj
		}
		return out[i].Bucket < out[j].Bucket
	})
	n := len(out)
	if len(out) > topBuckets {
		out = out[:topBuckets]
	}
	return n, out
}

// latencies copies the recent-latency window (unsorted).
func (st *Stats) latencies() []time.Duration {
	st.mu.Lock()
	defer st.mu.Unlock()
	n := st.count
	if n > latencyWindow {
		n = latencyWindow
	}
	lat := make([]time.Duration, n)
	copy(lat, st.ring[:n])
	return lat
}

// hitLatencies copies the recent cache-hit latency window (unsorted).
func (st *Stats) hitLatencies() []time.Duration {
	st.hitMu.Lock()
	defer st.hitMu.Unlock()
	n := st.hitCount
	if n > latencyWindow {
		n = latencyWindow
	}
	lat := make([]time.Duration, n)
	copy(lat, st.hitRing[:n])
	return lat
}

// queueWaitLatencies copies the recent queue-wait window (unsorted).
func (st *Stats) queueWaitLatencies() []time.Duration {
	st.qwMu.Lock()
	defer st.qwMu.Unlock()
	n := st.qwCount
	if n > latencyWindow {
		n = latencyWindow
	}
	lat := make([]time.Duration, n)
	copy(lat, st.qwRing[:n])
	return lat
}

// LatencyQuantiles reports the p50 and p99 of a latency sample in seconds
// (zeros for an empty sample). The sample is sorted in place. Cluster
// routers use it to merge the windows of several servers into one
// cluster-wide quantile pair. The nearest-rank math lives in obs so the
// health layer's rolling windows agree with these numbers exactly.
func LatencyQuantiles(lat []time.Duration) (p50, p99 float64) {
	return obs.DurationQuantiles(lat)
}
