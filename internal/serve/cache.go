package serve

import (
	"container/list"
	"sync"
	"time"

	"repro/internal/core"
)

const cacheShards = 16 // power of two; key distribution comes from FNV

// Cache is a sharded, mutex-per-shard LRU of solver results keyed by exact
// fingerprint. Entries expire after a TTL and the per-shard size is bounded,
// so a drifting workload cannot grow it without bound. Results are
// deep-copied on both insert and lookup; callers can mutate what they get
// back.
type Cache struct {
	shards   [cacheShards]cacheShard
	perShard int
	ttl      time.Duration
}

type cacheShard struct {
	mu    sync.Mutex
	lru   *list.List // front = most recent
	items map[uint64]*list.Element
}

type cacheEntry struct {
	key     uint64
	res     core.Result
	expires time.Time
}

// NewCache builds a cache holding at most maxEntries results (rounded up to
// a multiple of the shard count, minimum one per shard) for at most ttl;
// ttl <= 0 means entries never expire.
func NewCache(maxEntries int, ttl time.Duration) *Cache {
	perShard := (maxEntries + cacheShards - 1) / cacheShards
	if perShard < 1 {
		perShard = 1
	}
	c := &Cache{}
	for i := range c.shards {
		c.shards[i] = cacheShard{lru: list.New(), items: make(map[uint64]*list.Element)}
	}
	c.perShard = perShard
	c.ttl = ttl
	return c
}

// Get returns a copy of the cached result for key, if present and fresh.
// Entries are immutable once stored, so the deep copy runs outside the
// shard lock and a hot entry does not serialize its readers on the clone.
func (c *Cache) Get(key uint64) (core.Result, bool) {
	sh := &c.shards[key%cacheShards]
	sh.mu.Lock()
	el, ok := sh.items[key]
	if !ok {
		sh.mu.Unlock()
		return core.Result{}, false
	}
	ent := el.Value.(*cacheEntry)
	if c.ttl > 0 && time.Now().After(ent.expires) {
		sh.lru.Remove(el)
		delete(sh.items, key)
		sh.mu.Unlock()
		return core.Result{}, false
	}
	sh.lru.MoveToFront(el)
	sh.mu.Unlock()
	return cloneResult(ent.res), true
}

// Put stores a copy of res under key, evicting the least-recently-used
// entry of the shard when it is full.
func (c *Cache) Put(key uint64, res core.Result) {
	ent := &cacheEntry{key: key, res: cloneResult(res)} // clone outside the lock
	sh := &c.shards[key%cacheShards]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	ent.expires = time.Now().Add(c.ttl)
	if el, ok := sh.items[key]; ok {
		// Replace the value wholesale: entries stay immutable for the
		// lock-free clone in Get.
		el.Value = ent
		sh.lru.MoveToFront(el)
		return
	}
	if sh.lru.Len() >= c.perShard {
		if back := sh.lru.Back(); back != nil {
			sh.lru.Remove(back)
			delete(sh.items, back.Value.(*cacheEntry).key)
		}
	}
	sh.items[key] = sh.lru.PushFront(ent)
}

// Take removes and returns the cached result for key, if present and
// fresh. It is the extraction half of a cross-shard migration: unlike Get
// it does not clone, because removal makes the caller the sole owner (a
// concurrent Get that already holds the entry only reads from it).
func (c *Cache) Take(key uint64) (core.Result, bool) {
	sh := &c.shards[key%cacheShards]
	sh.mu.Lock()
	el, ok := sh.items[key]
	if !ok {
		sh.mu.Unlock()
		return core.Result{}, false
	}
	ent := el.Value.(*cacheEntry)
	sh.lru.Remove(el)
	delete(sh.items, key)
	sh.mu.Unlock()
	if c.ttl > 0 && time.Now().After(ent.expires) {
		return core.Result{}, false
	}
	return ent.res, true
}

// TakeBatch removes and returns the cached results for a whole key set,
// grouping the keys by shard so each shard's lock is taken once instead of
// once per key; out[i] is the entry for keys[i], nil when absent or
// expired. Like Take, removal transfers ownership, so nothing is cloned.
func (c *Cache) TakeBatch(keys []uint64) []*core.Result {
	out := make([]*core.Result, len(keys))
	var byShard [cacheShards][]int
	for i, key := range keys {
		byShard[key%cacheShards] = append(byShard[key%cacheShards], i)
	}
	now := time.Now()
	for shard, idxs := range byShard {
		if len(idxs) == 0 {
			continue
		}
		sh := &c.shards[shard]
		sh.mu.Lock()
		for _, i := range idxs {
			el, ok := sh.items[keys[i]]
			if !ok {
				continue
			}
			ent := el.Value.(*cacheEntry)
			sh.lru.Remove(el)
			delete(sh.items, keys[i])
			if c.ttl > 0 && now.After(ent.expires) {
				continue
			}
			out[i] = &ent.res
		}
		sh.mu.Unlock()
	}
	return out
}

// PutBatch stores copies of many results, one shard-lock acquisition per
// shard touched; results[i] lands under keys[i]. Clones are taken outside
// the locks, exactly as Put does.
func (c *Cache) PutBatch(keys []uint64, results []core.Result) {
	ents := make([]*cacheEntry, len(keys))
	var byShard [cacheShards][]int
	for i, key := range keys {
		ents[i] = &cacheEntry{key: key, res: cloneResult(results[i])}
		byShard[key%cacheShards] = append(byShard[key%cacheShards], i)
	}
	for shard, idxs := range byShard {
		if len(idxs) == 0 {
			continue
		}
		sh := &c.shards[shard]
		sh.mu.Lock()
		for _, i := range idxs {
			ent := ents[i]
			ent.expires = time.Now().Add(c.ttl)
			if el, ok := sh.items[ent.key]; ok {
				el.Value = ent
				sh.lru.MoveToFront(el)
				continue
			}
			if sh.lru.Len() >= c.perShard {
				if back := sh.lru.Back(); back != nil {
					sh.lru.Remove(back)
					delete(sh.items, back.Value.(*cacheEntry).key)
				}
			}
			sh.items[ent.key] = sh.lru.PushFront(ent)
		}
		sh.mu.Unlock()
	}
}

// Len reports the live entry count across shards (expired entries that have
// not been touched since expiry still count).
func (c *Cache) Len() int {
	var n int
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += sh.lru.Len()
		sh.mu.Unlock()
	}
	return n
}

// cloneResult deep-copies a solver result so cache internals never alias
// caller-visible slices.
func cloneResult(r core.Result) core.Result {
	out := r
	out.Allocation = r.Allocation.Clone()
	out.Metrics.Rates = append([]float64(nil), r.Metrics.Rates...)
	out.Metrics.UploadTimes = append([]float64(nil), r.Metrics.UploadTimes...)
	out.Metrics.CompTimes = append([]float64(nil), r.Metrics.CompTimes...)
	out.Iterations = append([]core.IterationTrace(nil), r.Iterations...)
	out.Duals = r.Duals.Clone()
	return out
}
