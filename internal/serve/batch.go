package serve

import (
	"context"
	"fmt"
	"time"

	"repro/internal/obs"
)

// BatchItem is the outcome of one instance in a SolveBatch call: exactly
// one of Response/Err is meaningful (Err nil means Response is valid). One
// bad item never fails its batch.
type BatchItem struct {
	Response Response
	Err      error
}

// SolveBatch answers many allocation requests in one call, amortizing the
// per-request pipeline over the batch: every instance is fingerprinted
// up front, exact matches are answered from the cache without touching the
// worker pool, identical misses (within the batch or against in-flight
// solves) collapse onto one solve, and the remainder is dispatched at the
// given priority — PriorityBulk replays queue behind live interactive
// traffic, PriorityInteractive competes with it. Items are returned in
// request order. ctx bounds only this caller's wait, exactly as in Solve.
func (s *Server) SolveBatch(ctx context.Context, reqs []Request, pri Priority) []BatchItem {
	s.stats.batchReqs.Add(1)
	s.stats.batchItems.Add(int64(len(reqs)))
	out := make([]BatchItem, len(reqs))

	// Phase 1: fingerprint, answer from cache, dispatch the misses. The
	// flight calls double as the batch's join handles: identical instances
	// share one call, and a leader enqueues exactly once.
	// One batch request carries one trace: spans from every item land in
	// it, which is the right granularity for a single HTTP call.
	tr := obs.FromContext(ctx)
	calls := make([]*flightCall, len(reqs))
	anySolve := false
	for i, req := range reqs {
		s.stats.requests.Add(1)
		itemBegan := time.Now()
		if req.System == nil {
			s.stats.errors.Add(1)
			out[i].Err = fmt.Errorf("nil system: %w", ErrBadRequest)
			continue
		}
		solve, err := s.solveFunc(req)
		if err != nil {
			s.stats.errors.Add(1)
			out[i].Err = err
			continue
		}
		fp := req.fingerprint(s.cfg.Quantization)
		if !s.cfg.DisableCache {
			if res, ok := s.cache.Get(fp.Exact); ok {
				s.stats.hits.Add(1)
				s.stats.bucketEvent(fp.Topo, bucketHit)
				s.stats.recordHitLatency(time.Since(itemBegan))
				out[i].Response = Response{Result: res, Source: SourceCache, Solver: req.Solver.normalize(), Fingerprint: fp, TraceID: tr.ID()}
				continue
			}
			s.stats.misses.Add(1)
			s.stats.bucketEvent(fp.Topo, bucketMiss)
		}
		call, leader := s.flight.join(fp.Exact)
		if leader {
			s.enqueue(&task{req: req, fp: fp, solve: solve, call: call, tr: tr}, pri)
		} else {
			s.stats.deduped.Add(1)
			if pri == PriorityInteractive {
				s.promote(call)
			}
		}
		calls[i] = call
		anySolve = true
	}
	if !anySolve {
		return out
	}

	// Phase 2: wait. The default deadline only starts once a solve has to
	// be awaited, so an all-cached batch never pays for the timer.
	if s.cfg.DefaultTimeout > 0 {
		if _, has := ctx.Deadline(); !has {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, s.cfg.DefaultTimeout)
			defer cancel()
		}
	}
	for i, call := range calls {
		if call == nil {
			continue
		}
		select {
		case <-call.done:
		case <-ctx.Done():
			out[i].Err = ctx.Err()
			continue
		case <-s.done:
			// Close racing with completion: prefer a result that is already
			// there over ErrClosed.
			select {
			case <-call.done:
			default:
				out[i].Err = ErrClosed
				continue
			}
		}
		if call.err != nil {
			out[i].Err = call.err
			continue
		}
		// Each item gets its own copy: the call's Response is shared by
		// every waiter, and Result is documented as mutable.
		resp := call.res
		resp.Result = cloneResult(resp.Result)
		out[i].Response = resp
	}
	return out
}
