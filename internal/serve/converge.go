package serve

import (
	"sort"
	"strconv"
	"sync"

	"repro/internal/core"
)

// IterBucketBounds are the upper bounds of the iteration-count histograms
// (Newton and outer); a final implicit +Inf bucket catches the overflow.
// Counts are small integers, so a handful of widening buckets separates
// "certificate accepted, zero iterations" from "solver ground for dozens".
var IterBucketBounds = [...]int{0, 1, 2, 4, 8, 16, 32}

// iterHist is a fixed-bucket histogram over iteration counts.
type iterHist struct {
	buckets [len(IterBucketBounds) + 1]int64
	sum     int64
	count   int64
}

func (h *iterHist) record(n int) {
	b := len(IterBucketBounds) // +Inf
	for i, bound := range IterBucketBounds {
		if n <= bound {
			b = i
			break
		}
	}
	h.buckets[b]++
	h.sum += int64(n)
	h.count++
}

// IterHistJSON is the wire form of an iteration histogram: raw (non-
// cumulative) per-bucket counts in IterBucketBounds order with the +Inf
// bucket last, plus sum and count for mean derivation. The raw form sums
// bucket-wise, which is what the cluster rollup needs.
type IterHistJSON struct {
	Buckets []int64 `json:"buckets"`
	Sum     int64   `json:"sum"`
	Count   int64   `json:"count"`
}

func (h *iterHist) toJSON() IterHistJSON {
	return IterHistJSON{
		Buckets: append([]int64(nil), h.buckets[:]...),
		Sum:     h.sum,
		Count:   h.count,
	}
}

// merge adds another histogram's counts bucket-wise (layouts match by
// construction; a shorter operand is tolerated for forward compatibility).
func (j *IterHistJSON) merge(o IterHistJSON) {
	if len(j.Buckets) < len(o.Buckets) {
		grown := make([]int64, len(o.Buckets))
		copy(grown, j.Buckets)
		j.Buckets = grown
	}
	for i := range o.Buckets {
		j.Buckets[i] += o.Buckets[i]
	}
	j.Sum += o.Sum
	j.Count += o.Count
}

// ConvergenceJSON is the solver convergence observatory's /v1/stats
// section: numerical-behaviour telemetry aggregated over every solve the
// server ran, split by serving path so a warm-start regression is visible
// as its own histogram shift rather than a blended average.
type ConvergenceJSON struct {
	// Newton histograms per serving path ("cold", "warm", "warm_dual").
	Newton map[string]IterHistJSON `json:"newton_iterations"`
	// Outer is the Algorithm 2 outer-iteration histogram over all paths.
	Outer IterHistJSON `json:"outer_iterations"`
	// DualSeed counts first-call dual-seed certificate outcomes by label
	// (accepted, projected, rejected, errored, none).
	DualSeed map[string]int64 `json:"dual_seed"`
	// BracketSeeded / BracketDiscovered count inner price searches whose
	// bisection bracket came from a carried clearing price versus
	// from-scratch discovery.
	BracketSeeded     int64 `json:"bracket_seeded"`
	BracketDiscovered int64 `json:"bracket_discovered"`
	// BracketRelWidthSum accumulates relative bracket widths; dividing by
	// the search count gives BracketMeanRelWidth.
	BracketRelWidthSum  float64 `json:"bracket_rel_width_sum"`
	BracketMeanRelWidth float64 `json:"bracket_mean_rel_width"`
	// SanitizeRejected counts warm-start candidates discarded because the
	// cached allocation could not be repaired into a feasible start.
	SanitizeRejected int64 `json:"sanitize_rejected"`
}

// Merge folds another cell's convergence section into this one — the
// cluster-wide rollup.
func (j *ConvergenceJSON) Merge(o ConvergenceJSON) {
	for path, h := range o.Newton {
		if j.Newton == nil {
			j.Newton = make(map[string]IterHistJSON)
		}
		cur := j.Newton[path]
		cur.merge(h)
		j.Newton[path] = cur
	}
	j.Outer.merge(o.Outer)
	for k, v := range o.DualSeed {
		if j.DualSeed == nil {
			j.DualSeed = make(map[string]int64)
		}
		j.DualSeed[k] += v
	}
	j.BracketSeeded += o.BracketSeeded
	j.BracketDiscovered += o.BracketDiscovered
	j.BracketRelWidthSum += o.BracketRelWidthSum
	if n := j.BracketSeeded + j.BracketDiscovered; n > 0 {
		j.BracketMeanRelWidth = j.BracketRelWidthSum / float64(n)
	}
	j.SanitizeRejected += o.SanitizeRejected
}

// convStats accumulates the observatory under one mutex; recording happens
// once per completed solve (not per request), so contention is negligible
// next to the solve itself.
type convStats struct {
	mu                sync.Mutex
	newton            map[string]*iterHist
	outer             iterHist
	dualSeed          map[string]int64
	bracketSeeded     int64
	bracketDiscovered int64
	bracketRelSum     float64
	sanitizeRejected  int64
}

// recordSolve folds one solve's trace into the observatory. path is the
// serving path label ("cold", "warm", "warm_dual").
func (c *convStats) recordSolve(path string, tr core.SolveTrace) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.newton == nil {
		c.newton = make(map[string]*iterHist)
	}
	h := c.newton[path]
	if h == nil {
		h = &iterHist{}
		c.newton[path] = h
	}
	h.record(tr.NewtonIters)
	c.outer.record(tr.OuterIters)
	if tr.DualSeedOutcome != "" {
		if c.dualSeed == nil {
			c.dualSeed = make(map[string]int64)
		}
		c.dualSeed[tr.DualSeedOutcome]++
	}
	c.bracketSeeded += int64(tr.BracketSeeded)
	c.bracketDiscovered += int64(tr.BracketDiscovered)
	c.bracketRelSum += tr.BracketRelWidth
}

func (c *convStats) recordSanitizeReject() {
	c.mu.Lock()
	c.sanitizeRejected++
	c.mu.Unlock()
}

func (c *convStats) snapshot() ConvergenceJSON {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := ConvergenceJSON{
		Outer:              c.outer.toJSON(),
		BracketSeeded:      c.bracketSeeded,
		BracketDiscovered:  c.bracketDiscovered,
		BracketRelWidthSum: c.bracketRelSum,
		SanitizeRejected:   c.sanitizeRejected,
	}
	if len(c.newton) > 0 {
		out.Newton = make(map[string]IterHistJSON, len(c.newton))
		for path, h := range c.newton {
			out.Newton[path] = h.toJSON()
		}
	}
	if len(c.dualSeed) > 0 {
		out.DualSeed = make(map[string]int64, len(c.dualSeed))
		for k, v := range c.dualSeed {
			out.DualSeed[k] = v
		}
	}
	if n := c.bracketSeeded + c.bracketDiscovered; n > 0 {
		out.BracketMeanRelWidth = c.bracketRelSum / float64(n)
	}
	return out
}

// iterLE renders bucket i's le label for the iteration histograms.
func iterLE(i int) string {
	if i >= len(IterBucketBounds) {
		return "+Inf"
	}
	return strconv.Itoa(IterBucketBounds[i])
}

// writePrometheus emits the convergence series under prefix with the given
// label set (the per-cell cell="N" label in cluster mode).
func (j ConvergenceJSON) writePrometheus(p *PromWriter, prefix, labels string) {
	histogram := func(name, help, extraLabels string, h IterHistJSON) {
		ls := labels
		if extraLabels != "" {
			if ls != "" {
				ls += ","
			}
			ls += extraLabels
		}
		bounds := make([]string, len(h.Buckets))
		for i := range h.Buckets {
			bounds[i] = iterLE(i)
		}
		p.Histogram(name, help, ls, bounds, h.Buckets, float64(h.Sum), h.Count)
	}
	paths := make([]string, 0, len(j.Newton))
	for path := range j.Newton {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	for _, path := range paths {
		histogram(prefix+"_newton_iterations", "Subproblem 2 Newton iterations per solve by serving path.",
			`path="`+path+`"`, j.Newton[path])
	}
	histogram(prefix+"_outer_iterations", "Algorithm 2 outer iterations per solve.", "", j.Outer)

	outcomes := make([]string, 0, len(j.DualSeed))
	for k := range j.DualSeed {
		outcomes = append(outcomes, k)
	}
	sort.Strings(outcomes)
	for _, k := range outcomes {
		ls := labels
		if ls != "" {
			ls += ","
		}
		p.Counter(prefix+"_dual_seed_total", "First-call dual-seed certificate outcomes by label.",
			ls+`outcome="`+k+`"`, float64(j.DualSeed[k]))
	}
	seededLs, discoveredLs := `bracket="seeded"`, `bracket="discovered"`
	if labels != "" {
		seededLs = labels + "," + seededLs
		discoveredLs = labels + "," + discoveredLs
	}
	p.Counter(prefix+"_bracket_searches_total", "Inner SP2_v2 price searches by bracket provenance.", seededLs, float64(j.BracketSeeded))
	p.Counter(prefix+"_bracket_searches_total", "Inner SP2_v2 price searches by bracket provenance.", discoveredLs, float64(j.BracketDiscovered))
	p.Gauge(prefix+"_bracket_rel_width_mean", "Mean relative bisection bracket width at entry.", labels, j.BracketMeanRelWidth)
	p.Counter(prefix+"_sanitize_rejected_total", "Warm-start candidates rejected by start sanitization.", labels, float64(j.SanitizeRejected))
}
