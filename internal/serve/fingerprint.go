// Package serve turns the one-shot Algorithm 2 solver into a serving
// subsystem: a base station re-solving the allocation continuously as
// channel gains drift and devices join or leave sees long runs of
// near-identical instances, and this package amortizes solves across them.
//
// It provides
//
//   - deterministic, quantization-bucketed instance fingerprinting
//     (nearby channel realizations collide on purpose);
//   - a sharded, TTL- and size-bounded LRU cache of solver results;
//   - a warm-start path that seeds Algorithm 2 from the cached allocation
//     of the same topology bucket when the exact fingerprint misses;
//   - a worker-pool server with a bounded queue, per-request deadlines,
//     singleflight deduplication of identical in-flight instances, and
//     hit/miss/latency counters;
//   - an HTTP front end (POST /v1/solve, GET /v1/stats) used by
//     cmd/flserved.
package serve

import (
	"encoding/binary"
	"math"

	"repro/internal/core"
	"repro/internal/fl"
)

// Quantization controls how instance parameters are bucketed before
// hashing. Coarser buckets make more "nearby" instances collide (higher hit
// rate, staler answers); finer buckets approach exact matching.
type Quantization struct {
	// GainResolutionDB is the channel-gain bucket width in dB for the exact
	// fingerprint. Gains are bucketed in log-space so a multiplicative drift
	// smaller than half a bucket still hits the cache. Default 0.25 dB.
	GainResolutionDB float64
	// ParamResolution is the relative bucket width for every other positive
	// parameter (powers, frequencies, sizes, weights, deadlines), expressed
	// in decades of log10. Default 1e-6 (effectively exact matching).
	ParamResolution float64
}

func (q Quantization) withDefaults() Quantization {
	if q.GainResolutionDB <= 0 {
		q.GainResolutionDB = 0.25
	}
	if q.ParamResolution <= 0 {
		q.ParamResolution = 1e-6
	}
	return q
}

// Fingerprint identifies an instance at two granularities. Exact keys equal
// means the instances are interchangeable up to quantization noise and the
// cached result can be returned directly. Topo keys equal means the
// instances share everything but the channel realization (same device
// population, boxes, shared constants, weights and options), so a cached
// allocation is a feasible, near-optimal starting point for Algorithm 2.
type Fingerprint struct {
	// Exact is the full instance hash, gains included (bucketed).
	Exact uint64
	// Topo is the topology-bucket hash, gains excluded.
	Topo uint64
}

// hasher accumulates quantized values into an FNV-1a hash. FNV is inlined
// (offset basis and prime as constants) because fingerprinting runs twice
// on the hot path of every request and hash/fnv allocates via its
// interface.
type hasher struct {
	h   uint64
	buf [8]byte
}

const fnvOffsetBasis = 14695981039346656037

func newHasher() *hasher { return &hasher{h: fnvOffsetBasis} }

func (hs *hasher) int64(v int64) {
	binary.LittleEndian.PutUint64(hs.buf[:], uint64(v))
	const prime = 1099511628211
	h := hs.h
	for _, b := range hs.buf {
		h ^= uint64(b)
		h *= prime
	}
	hs.h = h
}

func (hs *hasher) str(s string) {
	hs.int64(int64(len(s)))
	const prime = 1099511628211
	h := hs.h
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	hs.h = h
}

// qlog buckets a value by rounding its log10 to a grid of width res
// decades. Zero and negative values get dedicated buckets (the model never
// produces them for the hashed fields, but the hash must stay total).
func (hs *hasher) qlog(v, res float64) {
	switch {
	case v == 0:
		hs.int64(math.MinInt64)
	case v < 0:
		hs.int64(math.MinInt64 + 1)
		hs.qlog(-v, res)
	default:
		hs.int64(int64(math.Round(math.Log10(v) / res)))
	}
}

// FingerprintInstance hashes (system, weights, options) at both
// granularities for the default solver (Algorithm 2). It is deterministic
// across processes: only field values enter the hash, in a fixed order.
func FingerprintInstance(s *fl.System, w fl.Weights, opts core.Options, q Quantization) Fingerprint {
	return FingerprintRequest(Request{System: s, Weights: w, Options: opts}, q)
}

// FingerprintRequest hashes a full request, solver choice included: the
// same instance posted to different solvers must occupy different cache
// entries and different warm-start buckets, or a baseline's answer would
// masquerade as Algorithm 2's (and vice versa).
func FingerprintRequest(req Request, q Quantization) Fingerprint {
	s, w, opts := req.System, req.Weights, req.Options
	q = q.withDefaults()
	gainRes := q.GainResolutionDB / 10 // dB -> decades
	pr := q.ParamResolution

	topo := newHasher()
	topo.str(string(req.Solver.normalize()))
	topo.int64(int64(s.N()))
	topo.qlog(s.Bandwidth, pr)
	topo.qlog(s.N0, pr)
	topo.qlog(s.Kappa, pr)
	topo.qlog(s.LocalIters, pr)
	topo.qlog(s.GlobalRounds, pr)
	for _, d := range s.Devices {
		topo.qlog(d.Samples, pr)
		topo.qlog(d.CyclesPerSample, pr)
		topo.qlog(d.UploadBits, pr)
		topo.qlog(d.FMin, pr)
		topo.qlog(d.FMax, pr)
		topo.qlog(d.PMin, pr)
		topo.qlog(d.PMax, pr)
	}
	topo.qlog(w.W1, pr)
	topo.qlog(w.W2, pr)
	topo.int64(int64(opts.Mode))
	topo.qlog(opts.TotalDeadline, pr)
	topo.int64(int64(opts.SP2Solver))
	topo.int64(boolBit(opts.UsePaperSP1Dual)<<2 | boolBit(opts.UsePaperSP2Dual)<<1 | boolBit(opts.JointWeighted))
	// Accuracy knobs change what "the" solution is, so they key the cache
	// too. Raw values are hashed: a request spelling a default explicitly
	// (e.g. MaxOuter=30 vs 0) misses spuriously, which costs one solve,
	// never a wrong answer.
	topo.int64(int64(opts.MaxOuter))
	topo.int64(int64(opts.MaxNewton))
	topo.qlog(opts.OuterTol, pr)
	topo.qlog(opts.PhiTol, pr)
	topo.qlog(opts.Xi, pr)
	topo.qlog(opts.Epsilon, pr)
	// An explicit start changes the alternating solver's trajectory, so
	// requests differing only in Start must not share a cache entry. The
	// slices are hashed independently, each length-prefixed: the hash must
	// stay total even for malformed allocations (mismatched lengths) that
	// the solver will later reject.
	if opts.Start != nil {
		topo.int64(1)
		for _, vs := range [][]float64{opts.Start.Power, opts.Start.Bandwidth, opts.Start.Freq} {
			topo.int64(int64(len(vs)))
			for _, v := range vs {
				topo.qlog(v, pr)
			}
		}
	} else {
		topo.int64(0)
	}

	exact := newHasher()
	exact.int64(int64(topo.h))
	for _, d := range s.Devices {
		exact.qlog(d.Gain, gainRes)
	}
	return Fingerprint{Exact: exact.h, Topo: topo.h}
}

// FingerprintGains rebuilds a fingerprint from a previously computed
// topology hash and the system's current channel gains. It is the
// incremental half of FingerprintRequest: the exact hash is, by
// construction, the topology hash extended with the bucketed gains, so a
// caller that knows only the gains changed (a streaming delta session)
// skips re-hashing the whole device population and pays O(N) gain buckets
// instead. The topo argument must come from a FingerprintRequest (or
// earlier FingerprintGains) of the same request under the same
// quantization; a delta that touches anything besides gains invalidates it.
func FingerprintGains(topo uint64, s *fl.System, q Quantization) Fingerprint {
	q = q.withDefaults()
	gainRes := q.GainResolutionDB / 10 // dB -> decades
	exact := newHasher()
	exact.int64(int64(topo))
	for i := range s.Devices {
		exact.qlog(s.Devices[i].Gain, gainRes)
	}
	return Fingerprint{Exact: exact.h, Topo: topo}
}

func boolBit(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
