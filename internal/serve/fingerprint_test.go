package serve

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/fl"
)

func testSystem(t testing.TB, n int, seed int64) *fl.System {
	t.Helper()
	sc := experiments.Default()
	sc.N = n
	s, err := sc.Build(rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestFingerprintDeterministic(t *testing.T) {
	s := testSystem(t, 10, 1)
	w := fl.Weights{W1: 0.5, W2: 0.5}
	a := FingerprintInstance(s, w, core.Options{}, Quantization{})
	b := FingerprintInstance(s, w, core.Options{}, Quantization{})
	if a != b {
		t.Fatalf("same instance hashed differently: %+v vs %+v", a, b)
	}
}

func TestFingerprintGainBuckets(t *testing.T) {
	s := testSystem(t, 10, 1)
	w := fl.Weights{W1: 0.5, W2: 0.5}
	q := Quantization{GainResolutionDB: 1.0}
	// Pin every gain to a bucket centre (log10/res integral, res = 0.1
	// decade for 1 dB) so a tiny drift cannot cross a boundary.
	for i := range s.Devices {
		s.Devices[i].Gain = 1e-9 * pow10(float64(i)*0.1)
	}
	base := FingerprintInstance(s, w, core.Options{}, q)

	near := *s
	near.Devices = append([]fl.Device(nil), s.Devices...)
	for i := range near.Devices {
		near.Devices[i].Gain *= 1.02 // ~0.086 dB, well inside a 1 dB bucket
	}
	if got := FingerprintInstance(&near, w, core.Options{}, q); got.Exact != base.Exact {
		t.Errorf("sub-bucket gain drift changed the exact fingerprint")
	}

	far := *s
	far.Devices = append([]fl.Device(nil), s.Devices...)
	for i := range far.Devices {
		far.Devices[i].Gain *= 10 // 10 dB, many buckets away
	}
	got := FingerprintInstance(&far, w, core.Options{}, q)
	if got.Exact == base.Exact {
		t.Errorf("10 dB gain shift kept the exact fingerprint")
	}
	if got.Topo != base.Topo {
		t.Errorf("gain-only change moved the topology bucket")
	}
}

func TestFingerprintGainsMatchesFull(t *testing.T) {
	s := testSystem(t, 12, 3)
	w := fl.Weights{W1: 0.5, W2: 0.5}
	q := Quantization{}
	req := Request{System: s, Weights: w}
	full := FingerprintRequest(req, q)

	// Drift a few gains: the incremental recompute from the cached topo
	// hash must agree exactly with a from-scratch fingerprint of the
	// drifted system.
	rng := rand.New(rand.NewSource(9))
	for _, i := range []int{0, 5, 11} {
		s.Devices[i].Gain *= math.Exp(0.4 * rng.NormFloat64())
	}
	inc := FingerprintGains(full.Topo, s, q)
	fresh := FingerprintRequest(Request{System: s, Weights: w}, q)
	if inc != fresh {
		t.Fatalf("incremental fingerprint %+v != full %+v", inc, fresh)
	}
	if inc.Topo != full.Topo {
		t.Fatalf("gain drift moved the topology hash: %x -> %x", full.Topo, inc.Topo)
	}
}

func TestRequestPrecomputedFingerprintHonored(t *testing.T) {
	s := testSystem(t, 6, 4)
	w := fl.Weights{W1: 0.5, W2: 0.5}
	fp := Fingerprint{Exact: 12345, Topo: 678}
	req := Request{System: s, Weights: w, Fingerprint: &fp}
	if got := req.fingerprint(Quantization{}); got != fp {
		t.Fatalf("precomputed fingerprint ignored: got %+v want %+v", got, fp)
	}
	req.Fingerprint = nil
	if got := req.fingerprint(Quantization{}); got != FingerprintRequest(req, Quantization{}) {
		t.Fatalf("nil precomputed fingerprint must fall back to the full hash")
	}
}

func TestFingerprintTopologySensitivity(t *testing.T) {
	s := testSystem(t, 10, 1)
	w := fl.Weights{W1: 0.5, W2: 0.5}
	base := FingerprintInstance(s, w, core.Options{}, Quantization{})

	if got := FingerprintInstance(s, fl.Weights{W1: 0.3, W2: 0.7}, core.Options{}, Quantization{}); got.Topo == base.Topo {
		t.Errorf("weight change kept the topology bucket")
	}
	if got := FingerprintInstance(s, w, core.Options{Mode: core.ModeDeadline, TotalDeadline: 120}, Quantization{}); got.Topo == base.Topo {
		t.Errorf("mode change kept the topology bucket")
	}
	smaller := *s
	smaller.Devices = s.Devices[:9]
	if got := FingerprintInstance(&smaller, w, core.Options{}, Quantization{}); got.Topo == base.Topo {
		t.Errorf("dropping a device kept the topology bucket")
	}
	// Accuracy knobs key the cache: a tighter tolerance is a different
	// instance, not a hit on a looser answer.
	if got := FingerprintInstance(s, w, core.Options{OuterTol: 1e-12}, Quantization{}); got.Exact == base.Exact {
		t.Errorf("OuterTol change kept the exact fingerprint")
	}
	if got := FingerprintInstance(s, w, core.Options{MaxOuter: 100}, Quantization{}); got.Exact == base.Exact {
		t.Errorf("MaxOuter change kept the exact fingerprint")
	}
}

func pow10(x float64) float64 { return math.Pow(10, x) }
