package serve

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fl"
)

func resultWithObjective(obj float64) core.Result {
	a := fl.NewAllocation(2)
	a.Power[0] = obj
	return core.Result{Allocation: a, Objective: obj}
}

func TestCacheRoundTripAndIsolation(t *testing.T) {
	c := NewCache(8, 0)
	c.Put(1, resultWithObjective(42))
	got, ok := c.Get(1)
	if !ok || got.Objective != 42 {
		t.Fatalf("Get(1) = (%v, %t), want objective 42", got.Objective, ok)
	}
	// Mutating what Get returned must not corrupt the cached copy.
	got.Allocation.Power[0] = -1
	again, _ := c.Get(1)
	if again.Allocation.Power[0] != 42 {
		t.Fatalf("cache aliases caller slices: got %v", again.Allocation.Power[0])
	}
	if _, ok := c.Get(2); ok {
		t.Fatal("Get(2) hit an empty slot")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// Keys congruent mod cacheShards land in one shard; capacity 16 total
	// means one entry per shard, so the second insert evicts the first.
	c := NewCache(cacheShards, 0)
	c.Put(3, resultWithObjective(1))
	c.Put(3+cacheShards, resultWithObjective(2))
	if _, ok := c.Get(3); ok {
		t.Error("LRU entry survived an over-capacity insert")
	}
	if got, ok := c.Get(3 + cacheShards); !ok || got.Objective != 2 {
		t.Errorf("most recent entry missing: (%v, %t)", got.Objective, ok)
	}

	// A touched entry must outlive an untouched one.
	c2 := NewCache(2*cacheShards, 0) // two per shard
	c2.Put(3, resultWithObjective(1))
	c2.Put(3+cacheShards, resultWithObjective(2))
	c2.Get(3) // refresh key 3
	c2.Put(3+2*cacheShards, resultWithObjective(3))
	if _, ok := c2.Get(3); !ok {
		t.Error("recently used entry was evicted")
	}
	if _, ok := c2.Get(3 + cacheShards); ok {
		t.Error("least recently used entry survived")
	}
}

func TestCacheTTL(t *testing.T) {
	c := NewCache(8, time.Millisecond)
	c.Put(1, resultWithObjective(1))
	time.Sleep(5 * time.Millisecond)
	if _, ok := c.Get(1); ok {
		t.Fatal("expired entry still served")
	}
}
