package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/fl"
	"repro/internal/obs"
)

// DeviceJSON is the wire form of fl.Device.
type DeviceJSON struct {
	Samples         float64 `json:"samples"`
	CyclesPerSample float64 `json:"cycles_per_sample"`
	UploadBits      float64 `json:"upload_bits"`
	Gain            float64 `json:"gain"`
	FMinHz          float64 `json:"f_min_hz"`
	FMaxHz          float64 `json:"f_max_hz"`
	PMinW           float64 `json:"p_min_w"`
	PMaxW           float64 `json:"p_max_w"`
}

// SystemJSON is the wire form of fl.System.
type SystemJSON struct {
	Devices      []DeviceJSON `json:"devices"`
	BandwidthHz  float64      `json:"bandwidth_hz"`
	N0WPerHz     float64      `json:"n0_w_per_hz"`
	Kappa        float64      `json:"kappa"`
	LocalIters   float64      `json:"local_iters"`
	GlobalRounds float64      `json:"global_rounds"`
}

// SolveRequestJSON is the body of POST /v1/solve.
type SolveRequestJSON struct {
	System  SystemJSON `json:"system"`
	Weights struct {
		W1 float64 `json:"w1"`
		W2 float64 `json:"w2"`
	} `json:"weights"`
	// Mode is "weighted" (default) or "deadline".
	Mode string `json:"mode,omitempty"`
	// TotalDeadlineS is the fixed completion time for mode "deadline".
	TotalDeadlineS float64 `json:"total_deadline_s,omitempty"`
	// JointWeighted selects the joint 1-D-over-deadline weighted solver.
	JointWeighted bool `json:"joint_weighted,omitempty"`
	// Solver selects the answering algorithm: "algorithm2" (default),
	// "scheme1" (deadline mode only) or "simplified" (weighted mode only).
	// All run through the same cache/fingerprint pipeline.
	Solver string `json:"solver,omitempty"`
	// DeviceID names the requesting device for cluster routing and
	// cross-cell handoff; a single server ignores it.
	DeviceID string `json:"device_id,omitempty"`
}

// SolveBatchRequestJSON is the body of POST /v1/solve-batch: many solve
// requests decoded, fingerprinted and dispatched in one round trip.
type SolveBatchRequestJSON struct {
	Requests []SolveRequestJSON `json:"requests"`
	// Priority is "bulk" (default: replays queue behind live interactive
	// traffic) or "interactive".
	Priority string `json:"priority,omitempty"`
}

// BatchItemJSON is one item of a batch response, aligned by index with the
// request's items. A failed item carries its error; the others carry a
// normal solve response.
type BatchItemJSON struct {
	OK     bool               `json:"ok"`
	Error  string             `json:"error,omitempty"`
	Result *SolveResponseJSON `json:"result,omitempty"`
}

// SolveBatchResponseJSON is the body of a successful POST /v1/solve-batch.
type SolveBatchResponseJSON struct {
	Results []BatchItemJSON `json:"results"`
}

// SolveResponseJSON is the body of a successful POST /v1/solve.
type SolveResponseJSON struct {
	PowerW       []float64 `json:"power_w"`
	BandwidthHz  []float64 `json:"bandwidth_hz"`
	FreqHz       []float64 `json:"freq_hz"`
	RoundTimeS   float64   `json:"round_time_s"`
	TotalTimeS   float64   `json:"total_time_s"`
	TotalEnergyJ float64   `json:"total_energy_j"`
	TransEnergyJ float64   `json:"trans_energy_j"`
	CompEnergyJ  float64   `json:"comp_energy_j"`
	Objective    float64   `json:"objective"`
	Converged    bool      `json:"converged"`
	Iterations   int       `json:"iterations"`
	// NewtonIters is the total Algorithm 1 (Subproblem 2) iteration count
	// over all outer iterations — 0 on the dual-seeded warm path.
	NewtonIters int    `json:"newton_iters"`
	Source      string `json:"source"`
	// DualSeeded marks solves that consumed a cached Subproblem 2 dual
	// state on top of the warm-start allocation.
	DualSeeded    bool    `json:"dual_seeded"`
	Solver        string  `json:"solver"`
	SolveSeconds  float64 `json:"solve_seconds"`
	FingerprintHx string  `json:"fingerprint"`
	// TraceID names the lifecycle trace this solve was recorded under
	// (also echoed in the X-Trace-Id header; "" when untraced).
	TraceID string `json:"trace_id,omitempty"`
}

// SystemToJSON converts a system to its wire form (used by the load
// generator and tests).
func SystemToJSON(s *fl.System) SystemJSON {
	out := SystemJSON{
		Devices:      make([]DeviceJSON, s.N()),
		BandwidthHz:  s.Bandwidth,
		N0WPerHz:     s.N0,
		Kappa:        s.Kappa,
		LocalIters:   s.LocalIters,
		GlobalRounds: s.GlobalRounds,
	}
	for i, d := range s.Devices {
		out.Devices[i] = DeviceJSON{
			Samples:         d.Samples,
			CyclesPerSample: d.CyclesPerSample,
			UploadBits:      d.UploadBits,
			Gain:            d.Gain,
			FMinHz:          d.FMin,
			FMaxHz:          d.FMax,
			PMinW:           d.PMin,
			PMaxW:           d.PMax,
		}
	}
	return out
}

// SystemFromJSON converts the wire form back to a checked fl.System.
func SystemFromJSON(in SystemJSON) (*fl.System, error) {
	s := &fl.System{
		Devices:      make([]fl.Device, len(in.Devices)),
		Bandwidth:    in.BandwidthHz,
		N0:           in.N0WPerHz,
		Kappa:        in.Kappa,
		LocalIters:   in.LocalIters,
		GlobalRounds: in.GlobalRounds,
	}
	for i, d := range in.Devices {
		s.Devices[i] = fl.Device{
			Samples:         d.Samples,
			CyclesPerSample: d.CyclesPerSample,
			UploadBits:      d.UploadBits,
			Gain:            d.Gain,
			FMin:            d.FMinHz,
			FMax:            d.FMaxHz,
			PMin:            d.PMinW,
			PMax:            d.PMaxW,
		}
	}
	if err := s.Check(); err != nil {
		return nil, err
	}
	return s, nil
}

// RequestFromJSON builds the native request, validating the mode string.
// (Solver validation happens in Solve, where the mode/solver combination
// is checked as a whole.) The cluster router decodes the same wire form
// and routes it through here.
func RequestFromJSON(in SolveRequestJSON) (Request, error) {
	sys, err := SystemFromJSON(in.System)
	if err != nil {
		return Request{}, err
	}
	opts := core.Options{JointWeighted: in.JointWeighted}
	switch in.Mode {
	case "", "weighted":
		opts.Mode = core.ModeWeighted
	case "deadline":
		opts.Mode = core.ModeDeadline
		opts.TotalDeadline = in.TotalDeadlineS
	default:
		return Request{}, fmt.Errorf("unknown mode %q: %w", in.Mode, ErrBadRequest)
	}
	return Request{
		System:  sys,
		Weights: fl.Weights{W1: in.Weights.W1, W2: in.Weights.W2},
		Options: opts,
		Solver:  SolverName(in.Solver),
	}, nil
}

// ResponseToJSON flattens a response into the HTTP wire form (shared with
// the cluster front end, which adds the serving cell).
func ResponseToJSON(resp Response) SolveResponseJSON {
	m := resp.Result.Metrics
	newton := 0
	for _, it := range resp.Result.Iterations {
		newton += it.NewtonIters
	}
	return SolveResponseJSON{
		PowerW:        resp.Result.Allocation.Power,
		BandwidthHz:   resp.Result.Allocation.Bandwidth,
		FreqHz:        resp.Result.Allocation.Freq,
		RoundTimeS:    m.RoundTime,
		TotalTimeS:    m.TotalTime,
		TotalEnergyJ:  m.TotalEnergy,
		TransEnergyJ:  m.TransEnergy,
		CompEnergyJ:   m.CompEnergy,
		Objective:     resp.Result.Objective,
		Converged:     resp.Result.Converged,
		Iterations:    len(resp.Result.Iterations),
		NewtonIters:   newton,
		Source:        string(resp.Source),
		DualSeeded:    resp.DualSeeded,
		Solver:        string(resp.Solver),
		SolveSeconds:  resp.SolveTime.Seconds(),
		FingerprintHx: fmt.Sprintf("%016x", resp.Fingerprint.Exact),
		TraceID:       resp.TraceID,
	}
}

// Handler returns the HTTP API of the server:
//
//	POST /v1/solve        JSON instance in, allocation + metrics out
//	POST /v1/solve-batch  many instances in one body, bulk priority
//	GET  /v1/stats        counter snapshot (JSON)
//	GET  /metrics         the same counters in Prometheus text exposition
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/solve", s.handleSolve)
	mux.HandleFunc("POST /v1/solve-batch", s.handleSolveBatch)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// maxSolveBody bounds the /v1/solve request body (8 MiB fits tens of
// thousands of devices) so one oversized POST cannot exhaust memory.
const maxSolveBody = 8 << 20

// maxBatchBody bounds the /v1/solve-batch request body: batches amortize
// a round trip over many instances, so they get a proportionally larger
// ceiling.
const maxBatchBody = 64 << 20

// ParseBatchPriority maps the wire priority to the dispatch priority
// (shared with the cluster front end). Empty means bulk: the batch
// endpoint exists for replays, and replays must not starve live traffic.
func ParseBatchPriority(p string) (Priority, error) {
	switch p {
	case "", "bulk":
		return PriorityBulk, nil
	case "interactive":
		return PriorityInteractive, nil
	default:
		return 0, fmt.Errorf("unknown priority %q: %w", p, ErrBadRequest)
	}
}

// BatchItemToJSON flattens one batch outcome into the wire form (shared
// with the cluster front end).
func BatchItemToJSON(it BatchItem) BatchItemJSON {
	if it.Err != nil {
		return BatchItemJSON{Error: it.Err.Error()}
	}
	rj := ResponseToJSON(it.Response)
	return BatchItemJSON{OK: true, Result: &rj}
}

// DecodedBatch is the decoded ingress of one solve-batch call, shared with
// the cluster front end. Requests and DeviceIDs are aligned with the wire
// items and zero-valued where Errs[i] is non-nil; only the Valid indexes
// are dispatched, so a malformed item fails alone without polluting the
// request/error counters or routing state.
type DecodedBatch struct {
	Requests  []Request
	DeviceIDs []string
	Errs      []error
	Priority  Priority
}

// Valid returns the indexes of the items that decoded.
func (b DecodedBatch) Valid() []int {
	idx := make([]int, 0, len(b.Requests))
	for i, err := range b.Errs {
		if err == nil {
			idx = append(idx, i)
		}
	}
	return idx
}

// ReadBatchRequest decodes a POST /v1/solve-batch body. On an envelope
// error (oversized body, malformed JSON, unknown priority) it writes the
// HTTP error response itself and reports ok = false; per-item decode
// failures land in the result's Errs instead.
func ReadBatchRequest(w http.ResponseWriter, r *http.Request) (DecodedBatch, bool) {
	var in SolveBatchRequestJSON
	r.Body = http.MaxBytesReader(w, r.Body, maxBatchBody)
	if err := json.NewDecoder(r.Body).Decode(&in); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			httpError(w, r, http.StatusRequestEntityTooLarge, err)
			return DecodedBatch{}, false
		}
		httpError(w, r, http.StatusBadRequest, fmt.Errorf("decoding body: %w", err))
		return DecodedBatch{}, false
	}
	pri, err := ParseBatchPriority(in.Priority)
	if err != nil {
		httpError(w, r, http.StatusBadRequest, err)
		return DecodedBatch{}, false
	}
	dec := DecodedBatch{
		Requests:  make([]Request, len(in.Requests)),
		DeviceIDs: make([]string, len(in.Requests)),
		Errs:      make([]error, len(in.Requests)),
		Priority:  pri,
	}
	for i, rj := range in.Requests {
		req, err := RequestFromJSON(rj)
		if err != nil {
			dec.Errs[i] = err
			continue
		}
		dec.Requests[i] = req
		dec.DeviceIDs[i] = rj.DeviceID
	}
	return dec, true
}

func (s *Server) handleSolveBatch(w http.ResponseWriter, r *http.Request) {
	dec, ok := ReadBatchRequest(w, r)
	if !ok {
		return
	}
	valid := dec.Valid()
	sub := make([]Request, len(valid))
	for k, i := range valid {
		sub[k] = dec.Requests[i]
	}
	items := s.SolveBatch(r.Context(), sub, dec.Priority)
	out := SolveBatchResponseJSON{Results: make([]BatchItemJSON, len(dec.Requests))}
	for i, err := range dec.Errs {
		if err != nil {
			out.Results[i] = BatchItemJSON{Error: err.Error()}
		}
	}
	for k, i := range valid {
		out.Results[i] = BatchItemToJSON(items[k])
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	var in SolveRequestJSON
	r.Body = http.MaxBytesReader(w, r.Body, maxSolveBody)
	if err := json.NewDecoder(r.Body).Decode(&in); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			httpError(w, r, http.StatusRequestEntityTooLarge, err)
			return
		}
		httpError(w, r, http.StatusBadRequest, fmt.Errorf("decoding body: %w", err))
		return
	}
	req, err := RequestFromJSON(in)
	if err != nil {
		httpError(w, r, http.StatusBadRequest, err)
		return
	}
	resp, err := s.Solve(r.Context(), req)
	if err != nil {
		httpError(w, r, StatusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, ResponseToJSON(resp))
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", PromContentType)
	pw := NewPromWriter(w)
	s.Stats().WritePrometheus(pw, "flserve", "")
}

// StatusFor maps service errors to HTTP statuses (shared with the cluster
// front end, which layers its own routing errors on top).
func StatusFor(err error) int {
	switch {
	case errors.Is(err, ErrBadRequest), errors.Is(err, fl.ErrInvalidSystem),
		errors.Is(err, core.ErrBadInput):
		return http.StatusBadRequest
	case errors.Is(err, core.ErrInfeasible), errors.Is(err, baselines.ErrInfeasible):
		return http.StatusUnprocessableEntity
	case errors.Is(err, ErrOverloaded), errors.Is(err, ErrClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		// A capacity timeout is retryable, unlike a server bug.
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		// The client went away mid-solve; 499 (nginx convention) keeps
		// routine disconnects out of 5xx monitoring.
		return 499
	default:
		return http.StatusInternalServerError
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// httpError writes the error body and stamps a zero-duration PhaseError
// mark on the request's trace, so error responses are visible in the
// flight recorder and trace dumps even when the solve pipeline never ran.
func httpError(w http.ResponseWriter, r *http.Request, status int, err error) {
	obs.FromContext(r.Context()).RecordAttr(obs.PhaseError, time.Now(),
		obs.Attr{Cell: obs.CellNone, Detail: err.Error(), Value: int64(status)})
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
