package serve

import (
	"bytes"
	"context"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
)

// TestConvergenceObservatory drives cold, warm and dual-seeded solves and
// checks the per-path Newton histograms, outer-iteration histogram,
// dual-seed outcome counts and bracket telemetry all populate in the
// snapshot.
func TestConvergenceObservatory(t *testing.T) {
	s := testSystem(t, 8, 5)
	srv := New(Config{Workers: 2})
	defer srv.Close()
	rng := rand.New(rand.NewSource(9))

	if _, err := srv.Solve(context.Background(), Request{System: s, Weights: balanced()}); err != nil {
		t.Fatal(err)
	}
	// Small drifts stay in the warm bucket; repeated drifts of the same
	// instance exercise the dual-seeded path once a DualState is cached.
	cur := s
	for i := 0; i < 4; i++ {
		cur = driftGains(cur, 0.05, rng)
		if _, err := srv.Solve(context.Background(), Request{System: cur, Weights: balanced()}); err != nil {
			t.Fatal(err)
		}
	}

	conv := srv.Stats().Convergence
	var newtonTotal int64
	for path, h := range conv.Newton {
		if h.Count <= 0 || h.Sum < 0 {
			t.Fatalf("newton histogram for %q degenerate: %+v", path, h)
		}
		switch path {
		case "cold", "warm", "warm_dual":
		default:
			t.Fatalf("unexpected serving path %q in convergence stats", path)
		}
		newtonTotal += h.Count
	}
	if newtonTotal != 5 {
		t.Fatalf("newton histograms hold %d solves, want 5: %+v", newtonTotal, conv.Newton)
	}
	if conv.Newton["cold"].Count != 1 {
		t.Fatalf("cold newton count %d, want 1", conv.Newton["cold"].Count)
	}
	if conv.Outer.Count != 5 || conv.Outer.Sum <= 0 {
		t.Fatalf("outer histogram %+v, want 5 solves with iterations", conv.Outer)
	}
	if len(conv.Outer.Buckets) != len(IterBucketBounds)+1 {
		t.Fatalf("outer buckets %d, want %d (+Inf last)", len(conv.Outer.Buckets), len(IterBucketBounds)+1)
	}
	var seedTotal int64
	for outcome, n := range conv.DualSeed {
		switch outcome {
		case core.DualSeedNone, core.DualSeedAccepted, core.DualSeedProjected,
			core.DualSeedRejected, core.DualSeedErrored:
		default:
			t.Fatalf("unexpected dual-seed outcome %q", outcome)
		}
		seedTotal += n
	}
	if seedTotal != 5 {
		t.Fatalf("dual-seed outcomes cover %d solves, want 5: %+v", seedTotal, conv.DualSeed)
	}
	if conv.BracketSeeded+conv.BracketDiscovered <= 0 {
		t.Fatalf("no bracket searches recorded: %+v", conv)
	}
	if conv.BracketMeanRelWidth <= 0 {
		t.Fatalf("bracket mean relative width %v, want > 0", conv.BracketMeanRelWidth)
	}
}

// TestConvergenceMergeAndPrometheus checks the cluster-rollup Merge keeps
// bucket-wise sums and recomputes the mean, and that the Prometheus
// emission carries the convergence series.
func TestConvergenceMergeAndPrometheus(t *testing.T) {
	a := ConvergenceJSON{
		Newton:             map[string]IterHistJSON{"cold": {Buckets: []int64{1, 0, 2}, Sum: 9, Count: 3}},
		Outer:              IterHistJSON{Buckets: []int64{3, 1}, Sum: 5, Count: 4},
		DualSeed:           map[string]int64{core.DualSeedAccepted: 2},
		BracketSeeded:      2,
		BracketDiscovered:  1,
		BracketRelWidthSum: 3.0,
	}
	b := ConvergenceJSON{
		Newton:             map[string]IterHistJSON{"cold": {Buckets: []int64{0, 1, 1}, Sum: 4, Count: 2}, "warm": {Buckets: []int64{1}, Sum: 0, Count: 1}},
		Outer:              IterHistJSON{Buckets: []int64{1, 0, 2}, Sum: 7, Count: 3},
		DualSeed:           map[string]int64{core.DualSeedAccepted: 1, core.DualSeedRejected: 1},
		BracketSeeded:      1,
		BracketDiscovered:  2,
		BracketRelWidthSum: 3.0,
	}
	a.Merge(b)
	if got := a.Newton["cold"]; got.Count != 5 || got.Sum != 13 || got.Buckets[0] != 1 || got.Buckets[1] != 1 || got.Buckets[2] != 3 {
		t.Fatalf("merged cold histogram %+v", got)
	}
	if a.Newton["warm"].Count != 1 {
		t.Fatalf("merge dropped the warm histogram: %+v", a.Newton)
	}
	if a.Outer.Count != 7 || a.Outer.Sum != 12 || len(a.Outer.Buckets) != 3 {
		t.Fatalf("merged outer histogram %+v", a.Outer)
	}
	if a.DualSeed[core.DualSeedAccepted] != 3 || a.DualSeed[core.DualSeedRejected] != 1 {
		t.Fatalf("merged dual-seed counts %+v", a.DualSeed)
	}
	if a.BracketSeeded != 3 || a.BracketDiscovered != 3 || a.BracketRelWidthSum != 6.0 {
		t.Fatalf("merged bracket counters %+v", a)
	}
	if a.BracketMeanRelWidth != 1.0 { // 6.0 rel-width sum over 6 searches
		t.Fatalf("merged mean rel width %v, want 1.0", a.BracketMeanRelWidth)
	}

	var buf bytes.Buffer
	p := NewPromWriter(&buf)
	a.writePrometheus(p, "flserve", "")
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`flserve_newton_iterations_bucket{path="cold",le="0"} 1`,
		`flserve_newton_iterations_count{path="cold"} 5`,
		"flserve_outer_iterations_sum 12",
		`flserve_dual_seed_total{outcome="accepted"} 3`,
		`flserve_bracket_searches_total{bracket="seeded"} 3`,
		"flserve_bracket_rel_width_mean 1",
		"flserve_sanitize_rejected_total 0",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}
