package serve

import (
	"context"
	"math/rand"
	"testing"
)

// TestServerStateRoundTrip exports a warmed server's state and imports it
// into a fresh one: an exact replay must hit the cache, and a drifted
// replay must run warm + dual-seeded — the restored process behaves like
// the one that snapshotted.
func TestServerStateRoundTrip(t *testing.T) {
	src := New(Config{Workers: 2})
	defer src.Close()

	sys := testSystem(t, 8, 1)
	if _, err := src.Solve(context.Background(), Request{System: sys, Weights: balanced()}); err != nil {
		t.Fatal(err)
	}
	st := src.ExportState()
	if len(st.Results) != 1 || len(st.Warm) != 1 {
		t.Fatalf("exported state: %d results, %d warm seeds, want 1+1", len(st.Results), len(st.Warm))
	}
	if st.Warm[0].Duals == nil {
		t.Fatal("exported warm seed lost its dual state")
	}

	dst := New(Config{Workers: 2})
	defer dst.Close()
	dst.ImportState(st)

	exact, err := dst.Solve(context.Background(), Request{System: sys, Weights: balanced()})
	if err != nil {
		t.Fatal(err)
	}
	if exact.Source != SourceCache {
		t.Fatalf("restored exact replay source %q, want cache", exact.Source)
	}

	drifted := driftGains(sys, 0.05, rand.New(rand.NewSource(7)))
	resp, err := dst.Solve(context.Background(), Request{System: drifted, Weights: balanced()})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Source != SourceWarm || !resp.DualSeeded {
		t.Fatalf("restored drifted solve source %q dualSeeded %t, want warm + dual-seeded", resp.Source, resp.DualSeeded)
	}
}

// TestExportStateNonDestructive checks that exporting leaves the source
// serving exactly as before: the cache entry and warm seed stay put.
func TestExportStateNonDestructive(t *testing.T) {
	srv := New(Config{Workers: 2})
	defer srv.Close()
	sys := testSystem(t, 8, 2)
	if _, err := srv.Solve(context.Background(), Request{System: sys, Weights: balanced()}); err != nil {
		t.Fatal(err)
	}
	_ = srv.ExportState()
	resp, err := srv.Solve(context.Background(), Request{System: sys, Weights: balanced()})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Source != SourceCache {
		t.Fatalf("post-export replay source %q, want cache (export must not drain state)", resp.Source)
	}
}

// TestPeekBatchNonDestructive is the replication analogue: PeekBatch must
// copy the cache entry and warm seed without removing either (unlike
// ExtractBatch, which migrates them away).
func TestPeekBatchNonDestructive(t *testing.T) {
	srv := New(Config{Workers: 2})
	defer srv.Close()
	sys := testSystem(t, 8, 3)
	resp, err := srv.Solve(context.Background(), Request{System: sys, Weights: balanced()})
	if err != nil {
		t.Fatal(err)
	}
	migs := srv.PeekBatch([]Fingerprint{resp.Fingerprint})
	if len(migs) != 1 || migs[0].Result == nil || migs[0].Warm == nil || migs[0].WarmDuals == nil {
		t.Fatalf("peeked migration incomplete: %+v", migs)
	}
	replay, err := srv.Solve(context.Background(), Request{System: sys, Weights: balanced()})
	if err != nil {
		t.Fatal(err)
	}
	if replay.Source != SourceCache {
		t.Fatalf("post-peek replay source %q, want cache (peek must not drain state)", replay.Source)
	}

	// The peeked copy must be injectable into another server and leave a
	// drifted solve warm there.
	other := New(Config{Workers: 2})
	defer other.Close()
	other.InjectBatch([]Fingerprint{resp.Fingerprint}, []Migration{{Warm: migs[0].Warm, WarmDuals: migs[0].WarmDuals}})
	drifted := driftGains(sys, 0.05, rand.New(rand.NewSource(9)))
	warm, err := other.Solve(context.Background(), Request{System: drifted, Weights: balanced()})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Source != SourceWarm || !warm.DualSeeded {
		t.Fatalf("injected peek copy: drifted solve source %q dualSeeded %t, want warm + dual-seeded", warm.Source, warm.DualSeeded)
	}
}

// TestImportStateRespectsDisableFlags checks a disabled cache/warm index
// silently drops the matching sections instead of resurrecting them.
func TestImportStateRespectsDisableFlags(t *testing.T) {
	src := New(Config{Workers: 2})
	defer src.Close()
	sys := testSystem(t, 8, 4)
	if _, err := src.Solve(context.Background(), Request{System: sys, Weights: balanced()}); err != nil {
		t.Fatal(err)
	}
	st := src.ExportState()

	dst := New(Config{Workers: 2, DisableCache: true, DisableWarmStart: true})
	defer dst.Close()
	dst.ImportState(st)
	resp, err := dst.Solve(context.Background(), Request{System: sys, Weights: balanced()})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Source != SourceCold {
		t.Fatalf("import into disabled server still served from %q", resp.Source)
	}
}
