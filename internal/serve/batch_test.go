package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fl"
)

// TestSolveBatchMixed drives one batch through every item outcome: a fresh
// solve, an exact duplicate (deduplicated onto the same solve), a cache hit
// planted by an earlier Solve, and a malformed item. Order must be
// preserved and the bad item must not fail the batch.
func TestSolveBatchMixed(t *testing.T) {
	s := testSystem(t, 8, 1)
	srv := New(Config{Workers: 2})
	defer srv.Close()

	cached, err := srv.Solve(context.Background(), Request{System: s, Weights: balanced()})
	if err != nil {
		t.Fatal(err)
	}

	drifted := driftGains(s, 0.5, rand.New(rand.NewSource(3)))
	reqs := []Request{
		{System: drifted, Weights: balanced()}, // fresh solve
		{System: drifted, Weights: balanced()}, // duplicate of item 0
		{System: s, Weights: balanced()},       // cache hit
		{},                                     // nil system
	}
	items := srv.SolveBatch(context.Background(), reqs, PriorityBulk)
	if len(items) != 4 {
		t.Fatalf("got %d items, want 4", len(items))
	}
	if items[0].Err != nil || items[1].Err != nil {
		t.Fatalf("solve items failed: %v, %v", items[0].Err, items[1].Err)
	}
	if items[0].Response.Result.Objective != items[1].Response.Result.Objective {
		t.Errorf("duplicate items disagree: %v vs %v",
			items[0].Response.Result.Objective, items[1].Response.Result.Objective)
	}
	if items[2].Err != nil || items[2].Response.Source != SourceCache {
		t.Errorf("item 2 = (%v, %q), want cache hit", items[2].Err, items[2].Response.Source)
	}
	if items[2].Response.Result.Objective != cached.Result.Objective {
		t.Errorf("cache item objective %v != original %v", items[2].Response.Result.Objective, cached.Result.Objective)
	}
	if items[3].Err == nil {
		t.Error("nil-system item did not fail")
	}
	if err := drifted.Validate(items[0].Response.Result.Allocation, 1e-6); err != nil {
		t.Errorf("batch allocation infeasible: %v", err)
	}

	st := srv.Stats()
	if st.BatchRequests != 1 || st.BatchItems != 4 {
		t.Errorf("batch counters = (%d, %d), want (1, 4)", st.BatchRequests, st.BatchItems)
	}
	if st.Deduped != 1 {
		t.Errorf("deduped = %d, want 1 (duplicate batch item)", st.Deduped)
	}
}

// TestSolveBatchHTTP exercises POST /v1/solve-batch end to end: item order,
// per-item errors, and the priority knob's validation.
func TestSolveBatchHTTP(t *testing.T) {
	s := testSystem(t, 6, 1)
	srv := New(Config{Workers: 2})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	good := SolveRequestJSON{System: SystemToJSON(s)}
	good.Weights.W1, good.Weights.W2 = 0.5, 0.5
	bad := SolveRequestJSON{System: SystemToJSON(s), Mode: "nonsense"}
	body, _ := json.Marshal(SolveBatchRequestJSON{
		Requests: []SolveRequestJSON{good, bad, good},
		Priority: "interactive",
	})
	resp, err := http.Post(ts.URL+"/v1/solve-batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out SolveBatchResponseJSON
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 3 {
		t.Fatalf("got %d results, want 3", len(out.Results))
	}
	if !out.Results[0].OK || out.Results[0].Result == nil {
		t.Errorf("item 0 not ok: %+v", out.Results[0])
	}
	if out.Results[1].OK || out.Results[1].Error == "" {
		t.Errorf("malformed item 1 did not fail: %+v", out.Results[1])
	}
	// Items 0 and 2 are identical: item 2 deduplicates onto item 0's solve
	// (same in-flight call, not a cache hit) and must agree on the answer.
	if !out.Results[2].OK || out.Results[2].Result.Objective != out.Results[0].Result.Objective {
		t.Errorf("deduplicated item 2 = %+v, want item 0's answer", out.Results[2])
	}

	// Unknown priority is a request-level 400.
	body, _ = json.Marshal(SolveBatchRequestJSON{Requests: []SolveRequestJSON{good}, Priority: "urgent"})
	resp2, err := http.Post(ts.URL+"/v1/solve-batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown priority: status %d, want 400", resp2.StatusCode)
	}
}

// TestWorkerPrefersInteractive parks a bulk backlog behind a gated
// single-worker solver, then submits an interactive request: the very next
// solve after the in-flight bulk task finishes must be the interactive one,
// with seven bulk tasks still queued ahead of it in arrival order.
func TestWorkerPrefersInteractive(t *testing.T) {
	bulkSys := testSystem(t, 4, 1)        // bulk instances: 4 devices
	interactiveSys := testSystem(t, 5, 2) // interactive instance: 5 devices
	started := make(chan int, 32)         // device count of each solve as it begins
	gate := make(chan struct{}, 32)
	srv := New(Config{
		Workers:        1,
		QueueDepth:     4,
		BulkQueueDepth: 64,
		DisableCache:   true, // every request must solve
		Solver: func(sys *fl.System, w fl.Weights, o core.Options) (core.Result, error) {
			started <- sys.N()
			<-gate
			return core.Optimize(sys, w, o)
		},
	})
	defer srv.Close()

	rng := rand.New(rand.NewSource(5))
	bulk := make([]Request, 8)
	for i := range bulk {
		bulk[i] = Request{System: driftGains(bulkSys, 0.4, rng), Weights: balanced()}
	}
	batchDone := make(chan []BatchItem, 1)
	go func() { batchDone <- srv.SolveBatch(context.Background(), bulk, PriorityBulk) }()
	if n := <-started; n != 4 {
		t.Fatalf("first solve has %d devices, want a bulk instance (4)", n)
	}

	// The worker is inside bulk task 1. Submit the interactive request and
	// wait until it is parked in the interactive queue.
	interDone := make(chan error, 1)
	go func() {
		_, err := srv.Solve(context.Background(), Request{System: interactiveSys, Weights: balanced()})
		interDone <- err
	}()
	for len(srv.queue) == 0 {
		time.Sleep(time.Millisecond)
	}

	gate <- struct{}{} // finish bulk task 1
	if n := <-started; n != 5 {
		t.Fatalf("solve after the bulk task has %d devices, want the interactive instance (5) ahead of 7 queued bulk tasks", n)
	}
	close(gate) // drain everything
	if err := <-interDone; err != nil {
		t.Fatalf("interactive solve failed: %v", err)
	}
	for i, it := range <-batchDone {
		if it.Err != nil {
			t.Errorf("bulk item %d failed: %v", i, it.Err)
		}
	}
}

// TestInteractiveJoinPromotesBulkLeader pins the anti-starvation rule for
// fingerprint collisions across priorities: when a live Solve deduplicates
// onto a still-queued bulk batch item, that item is promoted onto the
// interactive queue and runs ahead of the rest of the bulk backlog.
func TestInteractiveJoinPromotesBulkLeader(t *testing.T) {
	sysA := testSystem(t, 4, 1)
	sysB := testSystem(t, 6, 2)
	sysC := testSystem(t, 8, 3)
	started := make(chan int, 32)
	gate := make(chan struct{}, 32)
	srv := New(Config{
		Workers:        1,
		QueueDepth:     4,
		BulkQueueDepth: 64,
		DisableCache:   true,
		Solver: func(sys *fl.System, w fl.Weights, o core.Options) (core.Result, error) {
			started <- sys.N()
			<-gate
			return core.Optimize(sys, w, o)
		},
	})
	defer srv.Close()

	bulk := []Request{
		{System: sysA, Weights: balanced()},
		{System: sysB, Weights: balanced()},
		{System: sysC, Weights: balanced()},
	}
	batchDone := make(chan []BatchItem, 1)
	go func() { batchDone <- srv.SolveBatch(context.Background(), bulk, PriorityBulk) }()
	if n := <-started; n != 4 {
		t.Fatalf("first solve has %d devices, want the first bulk item (4)", n)
	}

	// The worker is inside bulk item A; items B and C are queued as bulk.
	// An interactive caller joins item C's flight: promote must place C on
	// the interactive queue.
	interDone := make(chan error, 1)
	go func() {
		_, err := srv.Solve(context.Background(), Request{System: sysC, Weights: balanced()})
		interDone <- err
	}()
	for len(srv.queue) == 0 {
		time.Sleep(time.Millisecond)
	}

	gate <- struct{}{} // finish item A
	if n := <-started; n != 8 {
		t.Fatalf("solve after the promotion has %d devices, want the joined item (8) ahead of bulk item B", n)
	}
	close(gate)
	if err := <-interDone; err != nil {
		t.Fatalf("interactive join failed: %v", err)
	}
	for i, it := range <-batchDone {
		if it.Err != nil {
			t.Errorf("bulk item %d failed: %v", i, it.Err)
		}
	}
}

// TestPromoteClaimProtocol pins the claim protocol that keeps promotion
// safe: however many followers promote, only one interactive copy is
// queued; a rejected enqueue finishes the flight call only if it wins the
// claim; and the stale promoted copy is then discarded without finishing
// the call a second time (which would close a closed channel and crash).
// The server is built without workers so every step is deterministic.
func TestPromoteClaimProtocol(t *testing.T) {
	s := &Server{
		queue:  make(chan *task, 2),
		bulk:   make(chan *task, 2),
		done:   make(chan struct{}),
		flight: newFlightGroup(),
	}
	call, leader := s.flight.join(99)
	if !leader {
		t.Fatal("expected to lead the flight")
	}
	tk := &task{fp: Fingerprint{Exact: 99}, call: call, pri: PriorityBulk}
	call.leaderTask.Store(tk)

	s.promote(call)
	s.promote(call) // second follower: must not queue another copy
	if len(s.queue) != 1 {
		t.Fatalf("interactive queue holds %d copies, want 1", len(s.queue))
	}

	s.failTask(tk, ErrOverloaded, true) // rejected enqueue wins the claim
	select {
	case <-call.done:
	default:
		t.Fatal("rejected task did not finish its call")
	}
	if call.err != ErrOverloaded {
		t.Fatalf("call error = %v, want ErrOverloaded", call.err)
	}
	// The promoted copy is stale now: a worker pop must discard it (a
	// second finish would panic closing the already-closed done channel).
	s.runTask(<-s.queue, core.NewWorkspace())

	// Conversely, once a worker claims the task, a late rejection must
	// leave the call to that worker.
	call2, _ := s.flight.join(100)
	tk2 := &task{fp: Fingerprint{Exact: 100}, call: call2, pri: PriorityBulk}
	call2.leaderTask.Store(tk2)
	tk2.claimed.Store(true) // a worker owns it
	s.failTask(tk2, ErrOverloaded, true)
	select {
	case <-call2.done:
		t.Fatal("failTask finished a call owned by a claimed task")
	default:
	}
}

// TestBucketStats checks the per-topology-bucket hit-rate tracking: two
// topology families served with hits and misses must show up with distinct
// buckets and correct rates in the snapshot and in /metrics.
func TestBucketStats(t *testing.T) {
	a := testSystem(t, 6, 1)
	b := testSystem(t, 9, 2) // different N: different topology bucket
	srv := New(Config{Workers: 2})
	defer srv.Close()

	for i := 0; i < 3; i++ { // 1 miss + 2 hits in bucket A
		if _, err := srv.Solve(context.Background(), Request{System: a, Weights: balanced()}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := srv.Solve(context.Background(), Request{System: b, Weights: balanced()}); err != nil { // 1 miss in bucket B
		t.Fatal(err)
	}

	st := srv.Stats()
	if st.TrackedBuckets != 2 {
		t.Fatalf("tracked buckets = %d, want 2", st.TrackedBuckets)
	}
	if len(st.Buckets) != 2 {
		t.Fatalf("snapshot buckets = %d, want 2", len(st.Buckets))
	}
	top := st.Buckets[0] // busiest first
	if top.Hits != 2 || top.Misses != 1 || top.ColdSolves != 1 {
		t.Errorf("top bucket = %+v, want 2 hits / 1 miss / 1 cold", top)
	}
	if diff := top.HitRate - 2.0/3.0; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("top bucket hit rate = %g, want 2/3", top.HitRate)
	}
	if st.Buckets[1].Hits != 0 || st.Buckets[1].Misses != 1 {
		t.Errorf("second bucket = %+v, want 0 hits / 1 miss", st.Buckets[1])
	}

	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	srv.Handler().ServeHTTP(rec, req)
	body := rec.Body.String()
	for _, want := range []string{
		"flserve_tracked_buckets 2",
		"flserve_bucket_hits_total{bucket=\"" + top.Bucket + "\"} 2",
		"flserve_bucket_hit_rate{bucket=\"" + top.Bucket + "\"}",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestWarmStartDualSeeding is the serving-path contract of dual-state warm
// starts: against the same drifted stream, the dual-seeded server answers
// with zero Newton iterations where the allocation-only server still
// iterates, and its objectives are never worse than cold solves.
func TestWarmStartDualSeeding(t *testing.T) {
	base := testSystem(t, 10, 1)
	seeded := New(Config{Workers: 1})
	defer seeded.Close()
	allocOnly := New(Config{Workers: 1, DisableDualSeed: true})
	defer allocOnly.Close()

	for _, srv := range []*Server{seeded, allocOnly} {
		if _, err := srv.Solve(context.Background(), Request{System: base, Weights: balanced()}); err != nil {
			t.Fatal(err)
		}
	}

	newtonOf := func(r Response) int {
		tot := 0
		for _, it := range r.Result.Iterations {
			tot += it.NewtonIters
		}
		return tot
	}
	rng := rand.New(rand.NewSource(11))
	var seededNewton, allocNewton int
	for trial := 0; trial < 5; trial++ {
		drifted := driftGains(base, 0.25, rng)
		rs, err := seeded.Solve(context.Background(), Request{System: drifted, Weights: balanced()})
		if err != nil {
			t.Fatal(err)
		}
		ra, err := allocOnly.Solve(context.Background(), Request{System: drifted, Weights: balanced()})
		if err != nil {
			t.Fatal(err)
		}
		if rs.Source != SourceWarm || ra.Source != SourceWarm {
			t.Fatalf("trial %d: sources (%q, %q), want warm", trial, rs.Source, ra.Source)
		}
		seededNewton += newtonOf(rs)
		allocNewton += newtonOf(ra)

		cold, err := core.Optimize(drifted, balanced(), core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if rs.Result.Objective > cold.Objective*(1+1e-6) {
			t.Errorf("trial %d: dual-seeded objective %.10g worse than cold %.10g",
				trial, rs.Result.Objective, cold.Objective)
		}
	}
	if seededNewton != 0 {
		t.Errorf("dual-seeded warm solves used %d Newton iterations, want 0", seededNewton)
	}
	if allocNewton <= seededNewton {
		t.Errorf("allocation-only warm solves used %d Newton iterations, want more than dual-seeded (%d)",
			allocNewton, seededNewton)
	}
}

// TestHandoffCarriesDuals verifies a migrated warm entry keeps its dual
// state: after Extract/Inject the destination's warm solve still skips its
// Newton iterations.
func TestHandoffCarriesDuals(t *testing.T) {
	base := testSystem(t, 8, 1)
	src := New(Config{Workers: 1})
	defer src.Close()
	dst := New(Config{Workers: 1})
	defer dst.Close()

	req := Request{System: base, Weights: balanced()}
	if _, err := src.Solve(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	fp := FingerprintRequest(req, src.Quantization())
	m := src.Extract(fp)
	if m.Warm == nil || m.WarmDuals == nil {
		t.Fatalf("extract: warm=%v duals=%v, want both", m.Warm != nil, m.WarmDuals != nil)
	}
	dst.Inject(fp, m)

	drifted := driftGains(base, 0.25, rand.New(rand.NewSource(4)))
	resp, err := dst.Solve(context.Background(), Request{System: drifted, Weights: balanced()})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Source != SourceWarm {
		t.Fatalf("post-handoff source = %q, want warm", resp.Source)
	}
	for _, it := range resp.Result.Iterations {
		if it.NewtonIters != 0 {
			t.Fatalf("post-handoff warm solve used Newton iterations: %+v", resp.Result.Iterations)
		}
	}
}
