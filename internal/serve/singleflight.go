package serve

import (
	"sync"
	"sync/atomic"
)

// flightGroup deduplicates concurrent work on the same fingerprint: the
// first caller becomes the leader and enqueues the solve; followers
// arriving while it is in flight block on the same call and share its
// outcome. The call is finished by whichever side completes it — the
// worker after solving, or the leader when the enqueue itself fails — so
// a waiter abandoning on its own context never decides the outcome for
// the others. This is the standard singleflight pattern, reimplemented
// here (no external dependency) with a channel instead of a WaitGroup so
// every waiter can also abandon the wait on context cancellation.
type flightGroup struct {
	mu    sync.Mutex
	calls map[uint64]*flightCall
}

type flightCall struct {
	done chan struct{}
	res  Response
	err  error
	// leaderTask, once the leader has built its queue task, lets an
	// interactive follower promote a bulk-queued call onto the
	// interactive queue (see Server.promote). Nil until then.
	leaderTask atomic.Pointer[task]
}

func newFlightGroup() *flightGroup {
	return &flightGroup{calls: make(map[uint64]*flightCall)}
}

// join returns the in-flight call for key and whether the caller is the
// leader (created it). The leader must call finish exactly once.
func (g *flightGroup) join(key uint64) (*flightCall, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if c, ok := g.calls[key]; ok {
		return c, false
	}
	c := &flightCall{done: make(chan struct{})}
	g.calls[key] = c
	return c, true
}

// finish publishes the call's outcome and wakes every waiter.
func (g *flightGroup) finish(key uint64, c *flightCall, res Response, err error) {
	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	c.res, c.err = res, err
	close(c.done)
}
