package serve

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/fl"
	"repro/internal/obs"
)

// ErrOverloaded is returned when the request queue is full; callers should
// shed load or retry with backoff.
var ErrOverloaded = errors.New("serve: overloaded, queue full")

// ErrClosed is returned for requests arriving after Close.
var ErrClosed = errors.New("serve: server closed")

// ErrBadRequest flags malformed requests (nil system, invalid parameters).
var ErrBadRequest = errors.New("serve: bad request")

// Config parameterizes a Server. The zero value is usable: every field has
// a sensible default.
type Config struct {
	// Workers is the solver pool size. Default GOMAXPROCS.
	Workers int
	// QueueDepth bounds the number of requests waiting for a worker;
	// arrivals beyond it are rejected with ErrOverloaded. Default 4*Workers.
	QueueDepth int
	// CacheEntries bounds the solution cache. Default 4096.
	CacheEntries int
	// CacheTTL expires cached solutions. Zero selects the 10-minute
	// default; negative disables expiry.
	CacheTTL time.Duration
	// DefaultTimeout bounds a request that arrives without a context
	// deadline. Default 30 seconds; negative disables the default.
	DefaultTimeout time.Duration
	// Quantization controls fingerprint bucketing.
	Quantization Quantization
	// DisableCache turns off the exact-fingerprint solution cache.
	DisableCache bool
	// DisableWarmStart turns off seeding solves from topology neighbours.
	DisableWarmStart bool
	// DisableDualSeed restricts warm starts to the allocation alone,
	// without the cached Subproblem 2 dual state. Allocation-only warm
	// starts buy safety but re-run the Newton iteration; the dual seed is
	// what lets a drifted re-solve skip it (kept as a knob so benchmarks
	// can measure the difference).
	DisableDualSeed bool
	// BulkQueueDepth bounds the low-priority queue fed by batch requests;
	// arrivals beyond it are rejected with ErrOverloaded. Default
	// 4*QueueDepth.
	BulkQueueDepth int
	// Solver overrides the solve function (tests, alternative algorithms).
	// Default core.Optimize.
	Solver func(*fl.System, fl.Weights, core.Options) (core.Result, error)
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.Workers
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 4096
	}
	if c.CacheTTL == 0 {
		c.CacheTTL = 10 * time.Minute
	}
	if c.DefaultTimeout == 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.BulkQueueDepth <= 0 {
		c.BulkQueueDepth = 4 * c.QueueDepth
	}
	if c.Solver == nil {
		c.Solver = core.Optimize
	}
	return c
}

// Request is one allocation instance to solve.
type Request struct {
	// System is the FL deployment; it is read, never mutated.
	System *fl.System
	// Weights is the objective weight pair.
	Weights fl.Weights
	// Options configures the solver. A caller-provided Options.Start is
	// always honored; the warm-start path only fills in a nil Start.
	Options core.Options
	// Solver selects the answering algorithm (default SolverAlgorithm2).
	// The choice is part of the fingerprint, so the same instance under
	// different solvers never shares a cache entry.
	Solver SolverName
	// Fingerprint, when non-nil, is used instead of fingerprinting the
	// request from scratch. Streaming delta sessions precompute it
	// incrementally (FingerprintGains) because only the gains moved; it
	// must describe exactly this request under this server's quantization,
	// or cache entries would cross-contaminate. Left nil by ordinary
	// callers.
	Fingerprint *Fingerprint
}

// fingerprint resolves the request's fingerprint: the caller-precomputed
// one when present, a fresh FingerprintRequest otherwise.
func (req Request) fingerprint(q Quantization) Fingerprint {
	if req.Fingerprint != nil {
		return *req.Fingerprint
	}
	return FingerprintRequest(req, q)
}

// Source records how a response was produced.
type Source string

const (
	// SourceCache means the exact fingerprint hit the solution cache.
	SourceCache Source = "cache"
	// SourceWarm means Algorithm 2 ran seeded from a topology neighbour.
	SourceWarm Source = "warm"
	// SourceCold means Algorithm 2 ran from the default start.
	SourceCold Source = "cold"
)

// Response is the outcome of one request.
type Response struct {
	// Result is the solver output (a private copy; callers may mutate it).
	Result core.Result
	// Source tells whether the result came from cache, a warm or a cold
	// solve.
	Source Source
	// Solver is the algorithm that produced the result (normalized; never
	// empty).
	Solver SolverName
	// Fingerprint is the instance fingerprint used for caching.
	Fingerprint Fingerprint
	// SolveTime is the wall time of the solve (zero on cache hits).
	SolveTime time.Duration
	// DualSeeded reports whether the solve was seeded with a cached
	// Subproblem 2 dual state on top of the warm-start allocation (the
	// path that lets a drifted re-solve skip its Newton iterations).
	// Always false on cache hits and cold solves.
	DualSeeded bool
	// TraceID identifies the lifecycle trace this solve was recorded
	// under ("" when the request was not traced); the same ID is echoed
	// in the X-Trace-Id response header and retrievable via
	// GET /debug/traces.
	TraceID string
}

// Clone returns a response whose Result is privately owned by the caller;
// layers that fan one response out to several callers (a coalesced stream
// re-solve) clone per recipient, since Result is documented mutable.
func (r Response) Clone() Response {
	r.Result = cloneResult(r.Result)
	return r
}

// Server is a concurrent allocation service over the Algorithm 2 solver: a
// fixed worker pool drains a bounded queue, identical in-flight instances
// are deduplicated, exact fingerprint matches are answered from an LRU
// cache, and topology-bucket matches seed warm starts.
type Server struct {
	cfg    Config
	cache  *Cache
	warm   *warmIndex
	flight *flightGroup
	stats  Stats

	queue chan *task
	bulk  chan *task
	done  chan struct{}
	wg    sync.WaitGroup
	close sync.Once
}

type task struct {
	req   Request
	fp    Fingerprint
	solve func(*fl.System, fl.Weights, core.Options) (core.Result, error)
	call  *flightCall
	// tr is the leader caller's lifecycle trace (nil when untraced); the
	// worker records queue-wait and solver-phase spans against it. enq is
	// the enqueue instant the queue-wait span starts from.
	tr  *obs.Trace
	enq time.Time
	// pri is the queue the task was enqueued on; promote reads it to
	// decide whether an interactive follower should re-queue the task.
	pri Priority
	// claimed guards against double completion when promotion places the
	// same task on both queues: the first dequeue claims it and the other
	// pop discards it, and a failed enqueue may finish the flight call
	// with an error only if it wins the claim (a promoted copy may
	// already be running).
	claimed atomic.Bool
	// promoted ensures at most one interactive-queue copy exists however
	// many interactive followers join the flight.
	promoted atomic.Bool
}

// Priority ranks a request for worker dispatch. Workers always prefer
// interactive work; bulk tasks (batch replays) run only when no interactive
// request is waiting, so a batch cannot starve live traffic.
type Priority int

const (
	// PriorityInteractive is the default for single solves.
	PriorityInteractive Priority = iota
	// PriorityBulk marks batch replays that may wait behind live traffic.
	PriorityBulk
)

// New builds a server and starts its worker pool. Call Close (or cancel a
// Serve context) to stop it.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:    cfg,
		cache:  NewCache(cfg.CacheEntries, cfg.CacheTTL),
		warm:   newWarmIndex(cfg.CacheEntries),
		flight: newFlightGroup(),
		queue:  make(chan *task, cfg.QueueDepth),
		bulk:   make(chan *task, cfg.BulkQueueDepth),
		done:   make(chan struct{}),
	}
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s
}

// Serve blocks until ctx is cancelled, then shuts the worker pool down and
// returns the cancellation cause. It is a convenience for binaries; Solve
// works as soon as New returns.
func (s *Server) Serve(ctx context.Context) error {
	select {
	case <-ctx.Done():
		s.Close()
		return ctx.Err()
	case <-s.done:
		return ErrClosed
	}
}

// Close stops the worker pool. In-flight solves finish; queued and future
// requests that need a solve fail with ErrClosed, while exact-fingerprint
// cache hits are still served (useful when draining). Safe to call more
// than once.
func (s *Server) Close() {
	s.close.Do(func() { close(s.done) })
	s.wg.Wait()
}

// Stats returns a snapshot of the server counters, cache and warm-index
// occupancy included.
func (s *Server) Stats() Snapshot {
	st := s.stats.Snapshot()
	st.CacheEntries = s.cache.Len()
	st.WarmEntries = s.warm.len()
	st.QueueLen = len(s.queue)
	st.BulkQueueLen = len(s.bulk)
	return st
}

// SolveLatencies returns a copy of the recent solve-latency window
// (unsorted, cache hits excluded). Cluster routers merge the windows of
// their cells to compute cluster-wide quantiles.
func (s *Server) SolveLatencies() []time.Duration { return s.stats.latencies() }

// CacheHitLatencies returns a copy of the recent cache-hit latency window
// (unsorted); the hit path is tracked separately so solve quantiles stay
// honest. Cluster routers merge these exactly like SolveLatencies.
func (s *Server) CacheHitLatencies() []time.Duration { return s.stats.hitLatencies() }

// QueueWaitLatencies returns a copy of the recent enqueue→dequeue wait
// window (unsorted). Cluster routers merge these exactly like
// SolveLatencies; the health layer windows them per cell.
func (s *Server) QueueWaitLatencies() []time.Duration { return s.stats.queueWaitLatencies() }

// Quantization returns the fingerprint quantization this server buckets
// with. Handoff re-fingerprints migrating instances under the destination
// server's quantization, which need not match the source's.
func (s *Server) Quantization() Quantization { return s.cfg.Quantization }

// Migration bundles the cacheable state one fingerprint identifies: the
// exact-match solution and the topology-bucket warm-start allocation with
// its dual state. Either part may be absent (nil).
type Migration struct {
	// Result is the exact-fingerprint cache entry, nil if absent.
	Result *core.Result
	// Warm is the topology-bucket warm-start allocation, nil if absent.
	Warm *fl.Allocation
	// WarmDuals is the dual state cached next to Warm, nil if absent.
	WarmDuals *core.DualState
}

// Extract removes and returns the solution-cache entry identified by fp,
// together with a copy of its topology bucket's warm-start allocation and
// dual state. It is the source half of a cross-cell device handoff: after
// Extract the server answers that exact fingerprint cold again. The warm
// entry is copied, not removed — topology buckets are shared by every
// device whose instances collide there, and one device's mobility must not
// cold-start the neighbours it leaves behind.
func (s *Server) Extract(fp Fingerprint) Migration {
	var m Migration
	if res, ok := s.cache.Take(fp.Exact); ok {
		m.Result = &res
	}
	if e, ok := s.warm.get(fp.Topo); ok {
		m.Warm = &e.alloc
		m.WarmDuals = e.duals
	}
	return m
}

// Inject inserts a migrated bundle under fp, the destination half of a
// handoff: the next identical request is a cache hit, and a drifted one
// warm-starts from the migrated allocation and duals. Exactly what the
// bundle carries is inserted — whether a Result should double as a warm
// seed is the caller's call (it knows the solver; see SolverName.Warmable)
// — and parts whose pipeline stage is disabled by config are dropped.
func (s *Server) Inject(fp Fingerprint, m Migration) {
	if m.Result != nil && !s.cfg.DisableCache {
		s.cache.Put(fp.Exact, *m.Result)
	}
	if m.Warm != nil && !s.cfg.DisableWarmStart {
		s.warm.put(fp.Topo, *m.Warm, m.WarmDuals)
	}
}

// Solve answers one allocation request: from the cache on an exact
// fingerprint hit, by joining an identical in-flight solve, or by queueing
// a (warm- or cold-started) solve on the worker pool. ctx governs only
// this caller's wait: a solve, once enqueued, always runs to completion
// and lands in the cache, so a timed-out caller neither loses the work nor
// fails the other callers deduplicated onto it.
func (s *Server) Solve(ctx context.Context, req Request) (Response, error) {
	s.stats.requests.Add(1)
	if req.System == nil {
		s.stats.errors.Add(1)
		return Response{}, fmt.Errorf("nil system: %w", ErrBadRequest)
	}
	solve, err := s.solveFunc(req)
	if err != nil {
		s.stats.errors.Add(1)
		return Response{}, err
	}
	tr := obs.FromContext(ctx)
	began := time.Now()
	fp := req.fingerprint(s.cfg.Quantization)
	if tr != nil {
		tr.Record(obs.PhaseFingerprint, began)
	}
	if !s.cfg.DisableCache {
		var lookBegan time.Time
		if tr != nil {
			lookBegan = time.Now()
		}
		if res, ok := s.cache.Get(fp.Exact); ok {
			s.stats.hits.Add(1)
			s.stats.bucketEvent(fp.Topo, bucketHit)
			s.stats.recordHitLatency(time.Since(began))
			if tr != nil {
				tr.RecordAttr(obs.PhaseCacheLookup, lookBegan, obs.Attr{Cell: obs.CellNone, Detail: "hit"})
			}
			return Response{Result: res, Source: SourceCache, Solver: req.Solver.normalize(), Fingerprint: fp, TraceID: tr.ID()}, nil
		}
		s.stats.misses.Add(1)
		s.stats.bucketEvent(fp.Topo, bucketMiss)
		if tr != nil {
			tr.RecordAttr(obs.PhaseCacheLookup, lookBegan, obs.Attr{Cell: obs.CellNone, Detail: "miss"})
		}
	}

	// The default deadline only matters once a solve has to be awaited, so
	// the cache-hit fast path above never pays for the timer.
	if s.cfg.DefaultTimeout > 0 {
		if _, has := ctx.Deadline(); !has {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, s.cfg.DefaultTimeout)
			defer cancel()
		}
	}

	call, leader := s.flight.join(fp.Exact)
	var waitBegan time.Time
	if leader {
		s.enqueue(&task{req: req, fp: fp, solve: solve, call: call, tr: tr}, PriorityInteractive)
	} else {
		s.stats.deduped.Add(1)
		if tr != nil {
			waitBegan = time.Now()
		}
		// Joining a batch replay's in-flight solve must not demote this
		// caller to bulk priority.
		s.promote(call)
	}
	finished := func() (Response, error) {
		if !waitBegan.IsZero() {
			tr.RecordAttr(obs.PhaseDedupWait, waitBegan, obs.Attr{Cell: obs.CellNone, Detail: "joined in-flight solve"})
		}
		if call.err != nil {
			return Response{}, call.err
		}
		// Each waiter gets its own copy: the call's Response is shared by
		// every deduplicated caller, and Result is documented as mutable.
		resp := call.res
		resp.Result = cloneResult(resp.Result)
		if tr != nil {
			// Per-caller attribution: followers stamp their own trace over
			// the leader's shared response copy.
			resp.TraceID = tr.ID()
		}
		return resp, nil
	}
	select {
	case <-call.done:
		return finished()
	case <-ctx.Done():
		return Response{}, ctx.Err()
	case <-s.done:
		// Close racing with completion: prefer a result that is already
		// there over ErrClosed (select picks ready cases at random).
		select {
		case <-call.done:
			return finished()
		default:
			return Response{}, ErrClosed
		}
	}
}

// enqueue places the task on the queue matching its priority; the worker
// finishes the flight call after solving. When the enqueue itself fails
// (closed, queue full) the leader finishes the call with the error so every
// waiter wakes.
func (s *Server) enqueue(t *task, pri Priority) {
	t.pri = pri
	// Always stamped (not just when traced): the queue-wait stats window
	// is the health layer's scaling signal and must see every task.
	t.enq = time.Now()
	t.call.leaderTask.Store(t)
	select {
	case <-s.done:
		s.failTask(t, ErrClosed, false)
		return
	default:
	}
	q := s.queue
	if pri == PriorityBulk {
		q = s.bulk
	}
	select {
	case q <- t:
	case <-s.done:
		s.failTask(t, ErrClosed, false)
	default:
		s.failTask(t, ErrOverloaded, true)
	}
}

// failTask finishes a task's flight call with err — but only after winning
// the claim: a promoted duplicate may already be running (or queued) on the
// interactive queue, and finishing here too would complete the call twice
// (close of a closed channel). Losing the claim means a worker owns the
// task and will deliver the real outcome.
func (s *Server) failTask(t *task, err error, shed bool) {
	if !t.claimed.CompareAndSwap(false, true) {
		return
	}
	if shed {
		s.stats.rejected.Add(1)
	}
	s.flight.finish(t.fp.Exact, t.call, Response{}, err)
}

// promote re-queues a bulk-queued leader task onto the interactive queue
// when an interactive caller deduplicates onto its flight: without it, a
// live request colliding with a batch replay would wait at bulk priority
// behind all interactive traffic. Best-effort and race-tolerant: the task
// stays on the bulk queue too, whichever dequeue claims it first runs it,
// and a full interactive queue simply leaves the bulk copy in charge.
func (s *Server) promote(call *flightCall) {
	t := call.leaderTask.Load()
	if t == nil || t.pri != PriorityBulk || t.claimed.Load() {
		return
	}
	if !t.promoted.CompareAndSwap(false, true) {
		return // another follower already queued the interactive copy
	}
	select {
	case s.queue <- t:
	default:
	}
}

// worker drains the queues, preferring interactive work: a bulk task is
// picked up only when no interactive task is waiting at that moment. Each
// worker owns a solver workspace, reused across every solve it runs, so the
// steady-state request path performs no solver allocations.
func (s *Server) worker() {
	defer s.wg.Done()
	ws := core.NewWorkspace()
	for {
		// Fast path: interactive work (or shutdown) first.
		select {
		case t := <-s.queue:
			s.runTask(t, ws)
			continue
		case <-s.done:
			return
		default:
		}
		select {
		case t := <-s.queue:
			s.runTask(t, ws)
		case t := <-s.bulk:
			s.runTask(t, ws)
		case <-s.done:
			return
		}
	}
}

// runTask claims and executes one dequeued task. A promoted task sits on
// both queues; the claim makes the second pop a no-op.
func (s *Server) runTask(t *task, ws *core.Workspace) {
	if !t.claimed.CompareAndSwap(false, true) {
		return
	}
	s.stats.recordQueueWait(time.Since(t.enq))
	if t.tr != nil {
		queue := "interactive"
		if t.pri == PriorityBulk {
			queue = "bulk"
		}
		t.tr.RecordAttr(obs.PhaseQueueWait, t.enq, obs.Attr{Cell: obs.CellNone, Detail: queue})
	}
	resp, err := s.process(t, ws)
	s.flight.finish(t.fp.Exact, t.call, resp, err)
}

// process runs one solve, trying the warm-start path first. A topology-
// bucket hit seeds both the allocation and, unless disabled, the cached
// Subproblem 2 dual state, which lets the seeded solve skip its Newton
// iterations once the solver's residual check confirms the seed (the
// objective is protected by the hybrid solver's direct polish either way).
func (s *Server) process(t *task, ws *core.Workspace) (Response, error) {
	req := t.req
	source := SourceCold
	dualSeeded := false
	if !s.cfg.DisableWarmStart && startMatters(req) {
		if cand, ok := s.warm.get(t.fp.Topo); ok {
			if start, ok := sanitizeStart(req.System, cand.alloc); ok {
				req.Options.Start = &start
				if !s.cfg.DisableDualSeed && cand.duals.ValidFor(req.System.N()) {
					// Entries are immutable and the solver copies the seed
					// at init, so the reference is safe to share.
					req.Options.DualStart = cand.duals
					dualSeeded = true
				}
				source = SourceWarm
			} else {
				s.stats.conv.recordSanitizeReject()
			}
		}
	}
	if req.Options.Work == nil {
		req.Options.Work = ws
	}
	// The solve trace is always collected — the convergence observatory
	// wants every solve's iteration counts, traced request or not — at the
	// cost of a few nil-check-guarded writes inside the solver.
	var st core.SolveTrace
	stp := req.Options.Trace
	if stp == nil {
		stp = &st
		req.Options.Trace = stp
	}

	began := time.Now()
	res, err := t.solve(req.System, req.Weights, req.Options)
	elapsed := time.Since(began)
	if err != nil {
		if t.tr != nil {
			t.tr.RecordDur(obs.PhaseSolve, began, elapsed, obs.Attr{Cell: obs.CellNone, Detail: "error: " + err.Error()})
		}
		s.stats.errors.Add(1)
		return Response{}, err
	}
	path := "cold"
	if source == SourceWarm {
		path = "warm"
		if dualSeeded {
			path = "warm_dual"
		}
	}
	if t.tr != nil {
		detail := path
		if path == "warm_dual" {
			detail = "warm+dual" // the span detail predates the label form
		}
		t.tr.RecordDur(obs.PhaseSolve, began, elapsed, obs.Attr{Cell: obs.CellNone, Detail: detail, Value: int64(stp.NewtonIters)})
		// SP1/SP2 sub-spans are drawn from the solver's own clocks; they
		// share the solve's start offset since only the split matters.
		if stp.SP1Time > 0 {
			t.tr.RecordDur(obs.PhaseSP1, began, stp.SP1Time, obs.Attr{Cell: obs.CellNone, Value: int64(stp.OuterIters)})
		}
		if stp.SP2Time > 0 {
			t.tr.RecordDur(obs.PhaseSP2, began, stp.SP2Time, obs.Attr{Cell: obs.CellNone, Value: int64(stp.NewtonIters)})
		}
	}
	s.stats.conv.recordSolve(path, *stp)
	s.stats.recordLatency(elapsed)
	if source == SourceWarm {
		s.stats.warmStarts.Add(1)
		s.stats.bucketEvent(t.fp.Topo, bucketWarm)
	} else {
		s.stats.coldSolves.Add(1)
		s.stats.bucketEvent(t.fp.Topo, bucketCold)
	}
	if !s.cfg.DisableCache {
		s.cache.Put(t.fp.Exact, res)
	}
	// Baselines never consume a seeded start, so their allocations would
	// only sit dead in (their own, solver-keyed) topology buckets.
	if !s.cfg.DisableWarmStart && req.Solver.Warmable() {
		s.warm.put(t.fp.Topo, res.Allocation, res.Duals)
	}
	// Not cloned here: every waiter in Solve copies Result for itself.
	return Response{
		Result:      res,
		Source:      source,
		Solver:      req.Solver.normalize(),
		Fingerprint: t.fp,
		SolveTime:   elapsed,
		DualSeeded:  dualSeeded,
		TraceID:     t.tr.ID(),
	}, nil
}

// startMatters reports whether the solver would actually consume a seeded
// Options.Start for this request: only core.Optimize's weighted
// alternating loop reads it. The baseline solvers pick their own fixed
// starts, the deadline mode solves jointly from scratch, the joint
// weighted solver runs its own 1-D search, the pure-delay corner (w1 = 0)
// reduces to min-time, and a caller-provided Start always wins. Skipping
// the lookup in those cases keeps Source and the warm_starts counter
// honest (and saves the clone + validation).
func startMatters(req Request) bool {
	if !req.Solver.Warmable() {
		return false
	}
	if req.Options.Start != nil || req.Options.JointWeighted {
		return false
	}
	if req.Options.Mode != 0 && req.Options.Mode != core.ModeWeighted {
		return false
	}
	return req.Weights.W1 > 0
}

// sanitizeStart turns a cached allocation into a strictly feasible start
// point for the target system: solver outputs carry ~1e-6 floating-point
// residue at the box edges, while core.Optimize validates Start at 1e-9, so
// powers and frequencies are clamped into their boxes and the bandwidths
// rescaled under the budget. Returns false when the allocation cannot be
// repaired (wrong size, NaN, non-positive bandwidth).
func sanitizeStart(s *fl.System, a fl.Allocation) (fl.Allocation, bool) {
	if len(a.Power) != s.N() || len(a.Bandwidth) != s.N() || len(a.Freq) != s.N() {
		return fl.Allocation{}, false
	}
	out := a.Clone()
	var sum float64
	for i, d := range s.Devices {
		out.Power[i] = math.Min(math.Max(out.Power[i], d.PMin), d.PMax)
		out.Freq[i] = math.Min(math.Max(out.Freq[i], d.FMin), d.FMax)
		if !(out.Bandwidth[i] > 0) {
			return fl.Allocation{}, false
		}
		sum += out.Bandwidth[i]
	}
	if !(sum > 0) || math.IsInf(sum, 0) {
		return fl.Allocation{}, false
	}
	if sum > s.Bandwidth {
		// The margin keeps the rescaled sum strictly under the budget even
		// after the rounding of the per-device multiplies.
		scale := s.Bandwidth / sum * (1 - 1e-12)
		for i := range out.Bandwidth {
			out.Bandwidth[i] *= scale
		}
	}
	if s.Validate(out, 0) != nil {
		return fl.Allocation{}, false
	}
	return out, true
}

// warmEntry is one topology bucket's cached seed: the most recent
// allocation solved there and, when the solver exported one, its converged
// dual state.
type warmEntry struct {
	alloc fl.Allocation
	duals *core.DualState
}

// warmIndex maps topology buckets to the most recent allocation (and dual
// state) solved in that bucket. Eviction on overflow drops an arbitrary
// entry — the index is a best-effort hint, never a source of truth.
type warmIndex struct {
	mu  sync.Mutex
	max int
	m   map[uint64]warmEntry
}

func newWarmIndex(max int) *warmIndex {
	if max < 1 {
		max = 1
	}
	return &warmIndex{max: max, m: make(map[uint64]warmEntry)}
}

// get returns the stored entry by reference; entries are immutable (put
// stores private clones and replaces wholesale), so callers may read but
// must clone before mutating — sanitizeStart does, and the solver copies a
// dual seed at init.
func (w *warmIndex) get(key uint64) (warmEntry, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	e, ok := w.m[key]
	return e, ok
}

// len reports the current entry count.
func (w *warmIndex) len() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.m)
}

func (w *warmIndex) put(key uint64, a fl.Allocation, duals *core.DualState) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, ok := w.m[key]; !ok && len(w.m) >= w.max {
		for k := range w.m {
			delete(w.m, k)
			break
		}
	}
	w.m[key] = warmEntry{alloc: a.Clone(), duals: duals.Clone()}
}
