package serve

import (
	"time"

	"repro/internal/core"
	"repro/internal/fl"
)

// This file is the durable-state codec over the cache and warm index: the
// substrate internal/replica serializes to disk (periodic snapshots, final
// flush on shutdown) and ships to ring successors (crash replication).
// Where Extract/ExtractBatch REMOVE state (a migration transfers
// ownership), the export/peek paths here COPY it — a snapshot or a replica
// shipment must never degrade the live server.

// CachedResult is one exact-fingerprint solution-cache entry in a
// ServerState.
type CachedResult struct {
	Key    uint64      `json:"key"`
	Result core.Result `json:"result"`
}

// WarmSeed is one topology-bucket warm-start entry in a ServerState: the
// most recent allocation solved in that bucket and, when the solver
// exported one, its converged Subproblem 2 dual state.
type WarmSeed struct {
	Key   uint64          `json:"key"`
	Alloc fl.Allocation   `json:"alloc"`
	Duals *core.DualState `json:"duals,omitempty"`
}

// ServerState is the serializable hot state of one Server: the solution
// cache (keyed by exact fingerprint) and the warm-start index (keyed by
// topology bucket). The two sections are independent — cache entries and
// warm seeds are keyed in different spaces and either may be present
// without the other.
type ServerState struct {
	Results []CachedResult `json:"results,omitempty"`
	Warm    []WarmSeed     `json:"warm,omitempty"`
}

// ExportState copies the server's entire cache and warm index into a
// serializable state. The live server is untouched: entries are cloned
// (outside the shard locks — entries are immutable in place), so a
// snapshot ticker running against a hot server costs reads, not
// evictions.
func (s *Server) ExportState() ServerState {
	var st ServerState
	keys, results := s.cache.Dump()
	st.Results = make([]CachedResult, len(keys))
	for i := range keys {
		st.Results[i] = CachedResult{Key: keys[i], Result: results[i]}
	}
	wkeys, entries := s.warm.dump()
	st.Warm = make([]WarmSeed, len(wkeys))
	for i := range wkeys {
		st.Warm[i] = WarmSeed{Key: wkeys[i], Alloc: entries[i].alloc, Duals: entries[i].duals}
	}
	return st
}

// ImportState inserts a previously exported state: cache entries land in
// the solution cache, warm seeds in the warm index, each batched so the
// restore takes each shard lock once. Sections whose pipeline stage is
// disabled by config are dropped, exactly as Inject does. Existing
// entries under the same keys are replaced; everything else is kept, so
// importing into a warm server merges rather than resets.
func (s *Server) ImportState(st ServerState) {
	if !s.cfg.DisableCache && len(st.Results) > 0 {
		keys := make([]uint64, len(st.Results))
		results := make([]core.Result, len(st.Results))
		for i := range st.Results {
			keys[i] = st.Results[i].Key
			results[i] = st.Results[i].Result
		}
		s.cache.PutBatch(keys, results)
	}
	if !s.cfg.DisableWarmStart && len(st.Warm) > 0 {
		keys := make([]uint64, 0, len(st.Warm))
		entries := make([]warmEntry, 0, len(st.Warm))
		for i := range st.Warm {
			keys = append(keys, st.Warm[i].Key)
			entries = append(entries, warmEntry{alloc: st.Warm[i].Alloc.Clone(), duals: st.Warm[i].Duals.Clone()})
		}
		s.warm.putBatch(keys, entries)
	}
}

// PeekBatch copies the migration bundles for a fingerprint set WITHOUT
// removing anything — the replication counterpart of ExtractBatch, which
// transfers ownership. A cell shipping hot state to its ring successor
// must keep serving that state itself; out[i] corresponds to fps[i].
func (s *Server) PeekBatch(fps []Fingerprint) []Migration {
	out := make([]Migration, len(fps))
	keys := make([]uint64, len(fps))
	for i := range fps {
		keys[i] = fps[i].Exact
	}
	for i, res := range s.cache.GetBatch(keys) {
		out[i].Result = res
	}
	s.warm.mu.Lock()
	for i := range fps {
		if e, ok := s.warm.m[fps[i].Topo]; ok {
			// Entries are immutable (put stores private clones), so
			// referencing the map copy is safe, exactly as in ExtractBatch.
			out[i].Warm = &e.alloc
			out[i].WarmDuals = e.duals
		}
	}
	s.warm.mu.Unlock()
	return out
}

// Dump copies every live (unexpired) cache entry, most recent first within
// each shard. Entries are immutable in place, so the deep copies run
// outside the shard locks off references collected under them.
func (c *Cache) Dump() ([]uint64, []core.Result) {
	var refs []*cacheEntry
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		now := time.Now()
		for el := sh.lru.Front(); el != nil; el = el.Next() {
			ent := el.Value.(*cacheEntry)
			if c.ttl > 0 && now.After(ent.expires) {
				continue
			}
			refs = append(refs, ent)
		}
		sh.mu.Unlock()
	}
	keys := make([]uint64, len(refs))
	results := make([]core.Result, len(refs))
	for i, ent := range refs {
		keys[i] = ent.key
		results[i] = cloneResult(ent.res)
	}
	return keys, results
}

// GetBatch returns copies of the cached results for a key set without
// removing them — the non-destructive twin of TakeBatch; out[i] is the
// entry for keys[i], nil when absent or expired. Clones run outside the
// shard locks (entries are immutable in place), and recency is refreshed
// exactly as Get does.
func (c *Cache) GetBatch(keys []uint64) []*core.Result {
	out := make([]*core.Result, len(keys))
	refs := make([]*cacheEntry, len(keys))
	var byShard [cacheShards][]int
	for i, key := range keys {
		byShard[key%cacheShards] = append(byShard[key%cacheShards], i)
	}
	for shard, idxs := range byShard {
		if len(idxs) == 0 {
			continue
		}
		sh := &c.shards[shard]
		sh.mu.Lock()
		now := time.Now()
		for _, i := range idxs {
			el, ok := sh.items[keys[i]]
			if !ok {
				continue
			}
			ent := el.Value.(*cacheEntry)
			if c.ttl > 0 && now.After(ent.expires) {
				sh.lru.Remove(el)
				delete(sh.items, keys[i])
				continue
			}
			sh.lru.MoveToFront(el)
			refs[i] = ent
		}
		sh.mu.Unlock()
	}
	for i, ent := range refs {
		if ent != nil {
			res := cloneResult(ent.res)
			out[i] = &res
		}
	}
	return out
}

// dump copies every warm entry's key and contents; entries are immutable
// in place, so the references are safe to hand out.
func (w *warmIndex) dump() ([]uint64, []warmEntry) {
	w.mu.Lock()
	defer w.mu.Unlock()
	keys := make([]uint64, 0, len(w.m))
	entries := make([]warmEntry, 0, len(w.m))
	for k, e := range w.m {
		keys = append(keys, k)
		entries = append(entries, e)
	}
	return keys, entries
}
