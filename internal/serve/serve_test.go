package serve

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fl"
)

func balanced() fl.Weights { return fl.Weights{W1: 0.5, W2: 0.5} }

// driftGains returns a copy of s with every gain multiplied by
// exp(sigma * z_i), far enough to leave the exact fingerprint bucket when
// sigma is large against the bucket width.
func driftGains(s *fl.System, sigma float64, rng *rand.Rand) *fl.System {
	out := *s
	out.Devices = append([]fl.Device(nil), s.Devices...)
	for i := range out.Devices {
		out.Devices[i].Gain *= math.Exp(sigma * rng.NormFloat64())
	}
	return &out
}

func TestSolveColdThenCached(t *testing.T) {
	s := testSystem(t, 10, 1)
	srv := New(Config{Workers: 2})
	defer srv.Close()

	first, err := srv.Solve(context.Background(), Request{System: s, Weights: balanced()})
	if err != nil {
		t.Fatal(err)
	}
	if first.Source != SourceCold {
		t.Fatalf("first solve source = %q, want cold", first.Source)
	}
	if err := s.Validate(first.Result.Allocation, 1e-6); err != nil {
		t.Fatalf("cold allocation infeasible: %v", err)
	}

	second, err := srv.Solve(context.Background(), Request{System: s, Weights: balanced()})
	if err != nil {
		t.Fatal(err)
	}
	if second.Source != SourceCache {
		t.Fatalf("repeat solve source = %q, want cache", second.Source)
	}
	if second.Result.Objective != first.Result.Objective {
		t.Fatalf("cached objective %v != solved objective %v", second.Result.Objective, first.Result.Objective)
	}
	st := srv.Stats()
	if st.Hits != 1 || st.ColdSolves != 1 {
		t.Fatalf("stats = %+v, want 1 hit and 1 cold solve", st)
	}
}

func TestSingleflightDedup(t *testing.T) {
	s := testSystem(t, 6, 1)
	var calls atomic.Int64
	gate := make(chan struct{})
	srv := New(Config{
		Workers: 4,
		Solver: func(sys *fl.System, w fl.Weights, o core.Options) (core.Result, error) {
			calls.Add(1)
			<-gate
			return core.Optimize(sys, w, o)
		},
	})
	defer srv.Close()

	const clients = 8
	var wg sync.WaitGroup
	results := make([]Response, clients)
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = srv.Solve(context.Background(), Request{System: s, Weights: balanced()})
		}(i)
	}
	// Release the solver only after every follower has joined the flight.
	deadline := time.Now().Add(10 * time.Second)
	for srv.Stats().Deduped < clients-1 {
		if time.Now().After(deadline) {
			t.Fatalf("followers never joined: stats %+v", srv.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()

	for i := range errs {
		if errs[i] != nil {
			t.Fatalf("client %d: %v", i, errs[i])
		}
		if results[i].Result.Objective != results[0].Result.Objective {
			t.Fatalf("client %d objective %v differs from leader %v", i, results[i].Result.Objective, results[0].Result.Objective)
		}
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("solver ran %d times for %d identical concurrent requests, want 1", got, clients)
	}
	// Every deduplicated caller owns its result: mutating one must not
	// bleed into another.
	results[0].Result.Allocation.Power[0] = -1
	if results[1].Result.Allocation.Power[0] == -1 {
		t.Fatal("deduplicated responses share allocation slices")
	}
}

func TestWarmStartNeverWorseThanCold(t *testing.T) {
	base := testSystem(t, 10, 1)
	srv := New(Config{Workers: 2})
	defer srv.Close()

	if _, err := srv.Solve(context.Background(), Request{System: base, Weights: balanced()}); err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 5; trial++ {
		drifted := driftGains(base, 0.25, rng) // ~1 dB std, outside the 0.25 dB bucket
		warm, err := srv.Solve(context.Background(), Request{System: drifted, Weights: balanced()})
		if err != nil {
			t.Fatal(err)
		}
		if warm.Source != SourceWarm {
			t.Fatalf("trial %d: source = %q, want warm (topology bucket should hit)", trial, warm.Source)
		}
		cold, err := core.Optimize(drifted, balanced(), core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		// The warm start must not cost optimality: same objective as the
		// cold solve within tolerance, and never meaningfully worse.
		if warm.Result.Objective > cold.Objective*(1+1e-6) {
			t.Errorf("trial %d: warm objective %.10g worse than cold %.10g", trial, warm.Result.Objective, cold.Objective)
		}
		if rel := math.Abs(warm.Result.Objective-cold.Objective) / cold.Objective; rel > 1e-4 {
			t.Errorf("trial %d: warm/cold objectives differ by %.3g relative", trial, rel)
		}
		if err := drifted.Validate(warm.Result.Allocation, 1e-6); err != nil {
			t.Errorf("trial %d: warm allocation infeasible: %v", trial, err)
		}
	}
	if st := srv.Stats(); st.WarmStarts == 0 {
		t.Fatalf("no warm starts recorded: %+v", st)
	}
}

// TestCachedAtLeastTenTimesFasterThanCold is the serving-path speedup
// guarantee: answering from the cache must beat re-solving by >= 10x (in
// practice it is orders of magnitude).
func TestCachedAtLeastTenTimesFasterThanCold(t *testing.T) {
	s := testSystem(t, 15, 1)
	srv := New(Config{Workers: 1})
	defer srv.Close()

	began := time.Now()
	first, err := srv.Solve(context.Background(), Request{System: s, Weights: balanced()})
	coldWall := time.Since(began)
	if err != nil {
		t.Fatal(err)
	}
	if first.Source != SourceCold {
		t.Fatalf("first source = %q", first.Source)
	}

	const hits = 100
	began = time.Now()
	for i := 0; i < hits; i++ {
		resp, err := srv.Solve(context.Background(), Request{System: s, Weights: balanced()})
		if err != nil {
			t.Fatal(err)
		}
		if resp.Source != SourceCache {
			t.Fatalf("hit %d source = %q", i, resp.Source)
		}
	}
	perHit := time.Since(began) / hits
	if perHit*10 > coldWall {
		t.Fatalf("cache hit %v not >= 10x faster than cold solve %v", perHit, coldWall)
	}
}

func TestQueueOverloadSheds(t *testing.T) {
	gate := make(chan struct{})
	entered := make(chan struct{}, 16)
	srv := New(Config{
		Workers:    1,
		QueueDepth: 1,
		Solver: func(sys *fl.System, w fl.Weights, o core.Options) (core.Result, error) {
			entered <- struct{}{}
			<-gate
			return core.Result{Allocation: sys.MaxResourceAllocation(), Converged: true}, nil
		},
	})
	defer srv.Close()

	// Distinct weights give distinct fingerprints, so no dedup interferes.
	weightAt := func(i int) fl.Weights {
		w1 := 0.10 + 0.08*float64(i)
		return fl.Weights{W1: w1, W2: 1 - w1}
	}
	s := testSystem(t, 4, 1)
	// Occupy the single worker.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := srv.Solve(context.Background(), Request{System: s, Weights: weightAt(0)}); err != nil {
			t.Errorf("occupier: %v", err)
		}
	}()
	<-entered

	// With the worker blocked and a queue of one, nine more distinct
	// requests can place at most one; the other eight must shed
	// immediately. The queued request cannot finish until the gate opens,
	// so wait for the rejections via the counters, then release.
	const extra = 9
	errsCh := make(chan error, extra)
	for i := 1; i <= extra; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := srv.Solve(context.Background(), Request{System: s, Weights: weightAt(i)})
			errsCh <- err
		}(i)
	}
	deadline := time.Now().Add(10 * time.Second)
	for srv.Stats().Rejected < extra-1 {
		if time.Now().After(deadline) {
			t.Fatalf("rejections never arrived: stats %+v", srv.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()
	var overloaded int
	for i := 0; i < extra; i++ {
		if errors.Is(<-errsCh, ErrOverloaded) {
			overloaded++
		}
	}
	if overloaded != extra-1 {
		t.Fatalf("%d/%d requests shed, want %d", overloaded, extra, extra-1)
	}
	if st := srv.Stats(); st.Rejected != int64(overloaded) {
		t.Fatalf("stats.Rejected = %d, want %d", st.Rejected, overloaded)
	}
}

// TestCacheChurnParallel hammers a deliberately tiny cache from many
// goroutines; run under -race it checks the sharded LRU, warm index and
// counters for data races, and that the size bound holds under churn.
func TestCacheChurnParallel(t *testing.T) {
	s := testSystem(t, 4, 1)
	srv := New(Config{
		Workers:      4,
		QueueDepth:   256,
		CacheEntries: cacheShards, // one per shard
		Solver: func(sys *fl.System, w fl.Weights, o core.Options) (core.Result, error) {
			return core.Result{Allocation: sys.MaxResourceAllocation(), Objective: w.W1, Converged: true}, nil
		},
	})
	defer srv.Close()

	const goroutines = 8
	const perG = 50
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < perG; i++ {
				w1 := 0.01 + 0.98*float64(rng.Intn(64))/64
				_, err := srv.Solve(context.Background(), Request{
					System:  s,
					Weights: fl.Weights{W1: w1, W2: 1 - w1},
				})
				if err != nil && !errors.Is(err, ErrOverloaded) {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if n := srv.cache.Len(); n > cacheShards {
		t.Fatalf("cache grew to %d entries, bound is %d", n, cacheShards)
	}
	st := srv.Stats()
	if st.Requests != goroutines*perG {
		t.Fatalf("requests = %d, want %d", st.Requests, goroutines*perG)
	}
}

func TestServeLifecycle(t *testing.T) {
	srv := New(Config{Workers: 1})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx) }()
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("Serve returned %v, want context.Canceled", err)
	}
	s := testSystem(t, 4, 1)
	if _, err := srv.Solve(context.Background(), Request{System: s, Weights: balanced()}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Solve after Close returned %v, want ErrClosed", err)
	}
}

func TestSolveRejectsNilSystem(t *testing.T) {
	srv := New(Config{Workers: 1})
	defer srv.Close()
	if _, err := srv.Solve(context.Background(), Request{}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("nil system returned %v, want ErrBadRequest", err)
	}
}
