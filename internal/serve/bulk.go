package serve

import "repro/internal/core"

// This file is the bulk half of the cross-cell migration API: where
// Extract/Inject move one fingerprint's state with one lock round trip
// each, ExtractBatch/InjectBatch move a whole batch with one lock
// acquisition per cache shard and one for the warm index. Mass-mobility
// migrations (internal/cluster.MassHandoff) ride these so a thousand
// devices leaving a cell cost thousands of map operations, not thousands
// of lock convoys.

// ExtractBatch removes the solution-cache entries for every fingerprint
// and copies each one's topology-bucket warm state, in one batched pass;
// out[i] corresponds to fps[i]. Semantics per entry match Extract: the
// cache entry is removed (the server answers that exact fingerprint cold
// again), the warm entry is copied, not removed (topology buckets are
// shared by every device that collides there).
func (s *Server) ExtractBatch(fps []Fingerprint) []Migration {
	out := make([]Migration, len(fps))
	keys := make([]uint64, len(fps))
	for i := range fps {
		keys[i] = fps[i].Exact
	}
	for i, res := range s.cache.TakeBatch(keys) {
		out[i].Result = res
	}
	s.warm.mu.Lock()
	for i := range fps {
		if e, ok := s.warm.m[fps[i].Topo]; ok {
			// Entries are immutable (put stores private clones), so
			// referencing the map copy is safe, exactly as in get.
			out[i].Warm = &e.alloc
			out[i].WarmDuals = e.duals
		}
	}
	s.warm.mu.Unlock()
	return out
}

// InjectBatch inserts migrated bundles under their fingerprints, the
// destination half of a mass migration; ms[i] lands under fps[i].
// Semantics per entry match Inject: parts whose pipeline stage is disabled
// by config are dropped, and whether a Result should double as a warm seed
// is the caller's call.
func (s *Server) InjectBatch(fps []Fingerprint, ms []Migration) {
	if !s.cfg.DisableCache {
		keys := make([]uint64, 0, len(fps))
		results := make([]core.Result, 0, len(fps))
		for i := range fps {
			if ms[i].Result != nil {
				keys = append(keys, fps[i].Exact)
				results = append(results, *ms[i].Result)
			}
		}
		s.cache.PutBatch(keys, results)
	}
	if !s.cfg.DisableWarmStart {
		// Clone outside the warm-index lock, like put does.
		keys := make([]uint64, 0, len(fps))
		entries := make([]warmEntry, 0, len(fps))
		for i := range fps {
			if ms[i].Warm != nil {
				keys = append(keys, fps[i].Topo)
				entries = append(entries, warmEntry{alloc: ms[i].Warm.Clone(), duals: ms[i].WarmDuals.Clone()})
			}
		}
		s.warm.putBatch(keys, entries)
	}
}

// putBatch inserts pre-cloned entries under one lock; keys[i] gets
// entries[i]. Eviction on overflow matches put: an arbitrary existing
// entry is dropped per insertion beyond the bound.
func (w *warmIndex) putBatch(keys []uint64, entries []warmEntry) {
	w.mu.Lock()
	defer w.mu.Unlock()
	for i, key := range keys {
		if _, ok := w.m[key]; !ok && len(w.m) >= w.max {
			for k := range w.m {
				delete(w.m, k)
				break
			}
		}
		w.m[key] = entries[i]
	}
}
