package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/fl"
)

func postSolve(t *testing.T, url string, body []byte) (*http.Response, SolveResponseJSON) {
	t.Helper()
	resp, err := http.Post(url+"/v1/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out SolveResponseJSON
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	return resp, out
}

func TestHTTPSolveAndStats(t *testing.T) {
	s := testSystem(t, 8, 1)
	srv := New(Config{Workers: 2})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	req := SolveRequestJSON{System: SystemToJSON(s)}
	req.Weights.W1, req.Weights.W2 = 0.5, 0.5
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}

	var last SolveResponseJSON
	for i := 0; i < 3; i++ {
		resp, out := postSolve(t, ts.URL, body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d", i, resp.StatusCode)
		}
		wantSource := "cold"
		if i > 0 {
			wantSource = "cache"
		}
		if out.Source != wantSource {
			t.Errorf("request %d: source %q, want %q", i, out.Source, wantSource)
		}
		last = out
	}

	// The returned allocation must be feasible for the posted system.
	alloc := fl.Allocation{Power: last.PowerW, Bandwidth: last.BandwidthHz, Freq: last.FreqHz}
	if err := s.Validate(alloc, 1e-6); err != nil {
		t.Fatalf("served allocation infeasible: %v", err)
	}
	if !(last.TotalEnergyJ > 0) || !(last.TotalTimeS > 0) || !(last.Objective > 0) {
		t.Fatalf("degenerate metrics: %+v", last)
	}

	statsResp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer statsResp.Body.Close()
	var stats Snapshot
	if err := json.NewDecoder(statsResp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Hits < 2 || stats.ColdSolves != 1 || stats.Requests != 3 {
		t.Fatalf("stats after 3 identical posts: %+v", stats)
	}
	if !(stats.SolveP50 > 0) {
		t.Fatalf("latency quantiles missing: %+v", stats)
	}
}

func TestHTTPDeadlineMode(t *testing.T) {
	s := testSystem(t, 8, 1)
	srv := New(Config{Workers: 2})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	req := SolveRequestJSON{System: SystemToJSON(s), Mode: "deadline", TotalDeadlineS: 300}
	req.Weights.W1, req.Weights.W2 = 1, 0
	body, _ := json.Marshal(req)
	resp, out := postSolve(t, ts.URL, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("deadline solve: status %d", resp.StatusCode)
	}
	if out.TotalTimeS > 300*(1+1e-6) {
		t.Fatalf("deadline solve exceeded deadline: %g s", out.TotalTimeS)
	}

	// An impossible deadline must map to 422, not 500.
	req.TotalDeadlineS = 1e-6
	body, _ = json.Marshal(req)
	resp, _ = postSolve(t, ts.URL, body)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("infeasible deadline: status %d, want 422", resp.StatusCode)
	}
}

func TestHTTPBadRequests(t *testing.T) {
	srv := New(Config{Workers: 1})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for name, body := range map[string]string{
		"malformed json": "{not json",
		"empty system":   `{"system":{"devices":[]},"weights":{"w1":0.5,"w2":0.5}}`,
		"unknown mode":   `{"system":{"devices":[{"samples":1,"cycles_per_sample":1,"upload_bits":1,"gain":1,"f_min_hz":1,"f_max_hz":2,"p_min_w":1,"p_max_w":2}],"bandwidth_hz":1,"n0_w_per_hz":1,"kappa":1,"local_iters":1,"global_rounds":1},"weights":{"w1":0.5,"w2":0.5},"mode":"nope"}`,
	} {
		resp, err := http.Post(ts.URL+"/v1/solve", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}

	// Wrong method on the solve route.
	resp, err := http.Get(ts.URL + "/v1/solve")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/solve: status %d, want 405", resp.StatusCode)
	}
}
