package serve

import (
	"testing"
	"time"

	"repro/internal/obs"
)

func TestQuantileNearestRank(t *testing.T) {
	two := []time.Duration{time.Millisecond, 500 * time.Millisecond}
	if got := obs.QuantileDur(two, 0.99); got != 500*time.Millisecond {
		t.Errorf("p99 of two samples = %v, want the larger", got)
	}
	if got := obs.QuantileDur(two, 0.50); got != time.Millisecond {
		t.Errorf("p50 of two samples = %v, want the smaller", got)
	}
	one := []time.Duration{7 * time.Millisecond}
	if got := obs.QuantileDur(one, 0.99); got != 7*time.Millisecond {
		t.Errorf("p99 of one sample = %v", got)
	}
}

func TestStatsLatencyWindowWraps(t *testing.T) {
	var st Stats
	for i := 0; i < latencyWindow+10; i++ {
		st.recordLatency(time.Millisecond)
	}
	snap := st.Snapshot()
	if !(snap.SolveP50 > 0) || !(snap.SolveP99 > 0) {
		t.Fatalf("quantiles after wrap: %+v", snap)
	}
}
