// Package repro is a from-scratch Go reproduction of
//
//	X. Zhou, J. Zhao, H. Han, C. Guet,
//	"Joint Optimization of Energy Consumption and Completion Time in
//	Federated Learning", IEEE ICDCS 2022 (arXiv:2209.14900).
//
// It provides the paper's system model (N federated-learning devices
// uploading over FDMA to one base station), the weighted energy/delay
// resource-allocation algorithm (Algorithm 2 with its two subproblems), the
// evaluation baselines, and drivers that regenerate every figure of the
// paper's Section VII.
//
// # Quick start
//
//	sc := repro.DefaultScenario()
//	system, err := sc.Build(rand.New(rand.NewSource(1)))
//	if err != nil { ... }
//	res, err := repro.Optimize(system, repro.Weights{W1: 0.5, W2: 0.5}, repro.Options{})
//	if err != nil { ... }
//	fmt.Println(res.Metrics.TotalEnergy, res.Metrics.TotalTime)
//
// The facade re-exports the stable subset of the internal packages; see
// internal/core for solver internals and internal/experiments for the
// figure drivers.
package repro

import (
	"context"
	"io"
	"log/slog"
	"math/rand"
	"net/http"

	"repro/internal/baselines"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/ctrl"
	"repro/internal/experiments"
	"repro/internal/fedavg"
	"repro/internal/fl"
	"repro/internal/health"
	"repro/internal/obs"
	"repro/internal/obs/forensics"
	"repro/internal/obs/telemetry"
	"repro/internal/replica"
	"repro/internal/serve"
	"repro/internal/sim"
	"repro/internal/stream"
)

// Core model types (see internal/fl).
type (
	// System is a complete FL deployment: devices plus shared constants.
	System = fl.System
	// Device holds one device's static parameters.
	Device = fl.Device
	// Weights is the objective weight pair (w1, w2) of problem (8).
	Weights = fl.Weights
	// Allocation holds the decision variables (p, B, f).
	Allocation = fl.Allocation
	// Metrics is the energy/latency accounting of an allocation.
	Metrics = fl.Metrics
)

// Optimizer types (see internal/core).
type (
	// Options configures the optimizer.
	Options = core.Options
	// Result is the optimizer output.
	Result = core.Result
	// Mode selects weighted or deadline-constrained operation.
	Mode = core.Mode
	// SP2Method selects the Subproblem 2 strategy.
	SP2Method = core.SP2Method
	// DualState is the converged Subproblem 2 dual state (bandwidth price
	// plus per-device Newton multipliers); cache it next to an allocation
	// and pass it back via Options.DualStart to skip Newton iterations.
	DualState = core.DualState
	// Workspace is reusable solver scratch memory (Options.Work); one per
	// goroutine keeps repeated solves allocation-free.
	Workspace = core.Workspace
)

// NewWorkspace returns an empty solver workspace; see Options.Work.
func NewWorkspace() *Workspace { return core.NewWorkspace() }

// Re-exported operating modes and solver selectors.
const (
	// ModeWeighted minimizes w1*E + w2*T (problem (8)).
	ModeWeighted = core.ModeWeighted
	// ModeDeadline minimizes E under a fixed completion time (Figs. 7-8).
	ModeDeadline = core.ModeDeadline
	// SP2Hybrid runs the paper's Algorithm 1 polished by the direct solver.
	SP2Hybrid = core.SP2Hybrid
	// SP2NewtonOnly runs the paper's Algorithm 1 alone.
	SP2NewtonOnly = core.SP2NewtonOnly
	// SP2DirectOnly runs only the reduction-based global solver.
	SP2DirectOnly = core.SP2DirectOnly
)

// Experiment types (see internal/experiments).
type (
	// Scenario parameterizes a deployment (Section VII-A defaults).
	Scenario = experiments.Scenario
	// RunConfig controls figure regeneration (trials, seed).
	RunConfig = experiments.RunConfig
	// Figure is a reproduced plot stored as numeric series.
	Figure = experiments.Figure
	// Series is one labelled curve.
	Series = experiments.Series
)

// Optimize runs the paper's resource-allocation algorithm (Algorithm 2) on
// the system with the given weights.
func Optimize(s *System, w Weights, opts Options) (Result, error) {
	return core.Optimize(s, w, opts)
}

// MinCompletionTime returns the minimum achievable per-round completion
// time and the allocation attaining it (full power and frequency, bandwidth
// waterfilled to equalize round times).
func MinCompletionTime(s *System) (Allocation, float64, error) {
	mt, err := core.SolveMinTime(s)
	if err != nil {
		return Allocation{}, 0, err
	}
	return mt.Allocation, mt.RoundDeadline, nil
}

// DefaultScenario returns the paper's Section VII-A parameters.
func DefaultScenario() Scenario { return experiments.Default() }

// WeightPairs returns the five (w1, w2) pairs used throughout the paper's
// evaluation.
func WeightPairs() []Weights { return experiments.WeightPairs() }

// RandomFreqBenchmark is the paper's Fig. 2 comparison scheme: random CPU
// frequency, full power, equal bandwidth split.
func RandomFreqBenchmark(s *System, rng *rand.Rand) Allocation {
	return baselines.RandomFreq(s, rng)
}

// RandomPowerBenchmark is the paper's Fig. 3 comparison scheme: random
// transmit power, full frequency, equal bandwidth split.
func RandomPowerBenchmark(s *System, rng *rand.Rand) Allocation {
	return baselines.RandomPower(s, rng)
}

// CommunicationOnly optimizes only the transmission side under a total
// completion-time limit (Fig. 7 baseline).
func CommunicationOnly(s *System, totalDeadline float64) (Allocation, error) {
	return baselines.CommunicationOnly(s, totalDeadline)
}

// ComputationOnly optimizes only the CPU frequencies under a total
// completion-time limit (Fig. 7 baseline).
func ComputationOnly(s *System, totalDeadline float64) (Allocation, error) {
	return baselines.ComputationOnly(s, totalDeadline)
}

// Scheme1 is the state-of-the-art comparator of Fig. 8 (Yang et al.,
// energy minimization under a hard deadline, reproduced as block-coordinate
// descent without the joint (p, B) treatment).
func Scheme1(s *System, totalDeadline float64) (Allocation, error) {
	return baselines.Scheme1(s, totalDeadline, baselines.Scheme1Options{})
}

// FedAvg types (see internal/fedavg) for examples that tie the allocation
// to a live training loop.
type (
	// FedAvgConfig parameterizes FedAvg training (R_l, R_g, learning rate).
	FedAvgConfig = fedavg.Config
	// FedAvgDataset is a labelled design matrix.
	FedAvgDataset = fedavg.Dataset
	// FedAvgModel is a logistic-regression parameter vector.
	FedAvgModel = fedavg.Model
	// FedAvgResult reports a completed training run.
	FedAvgResult = fedavg.TrainResult
)

// SyntheticLogistic draws a synthetic binary-classification dataset and the
// generating weights.
func SyntheticLogistic(rng *rand.Rand, n, dim int, labelNoise float64) (FedAvgDataset, []float64) {
	return fedavg.SyntheticLogistic(rng, n, dim, labelNoise)
}

// SplitEqual shards a dataset across devices.
func SplitEqual(ds FedAvgDataset, parts int) ([]FedAvgDataset, error) {
	return fedavg.SplitEqual(ds, parts)
}

// TrainFedAvg runs the FedAvg loop, invoking hook after every global round.
func TrainFedAvg(cfg FedAvgConfig, shards []FedAvgDataset, hook func(round int, m FedAvgModel)) (FedAvgResult, error) {
	return fedavg.Train(cfg, shards, hook)
}

// Replay simulates a campaign of global rounds with per-round Nakagami-m
// small-scale fading around the mean channel gains, measuring the realized
// energy/latency and deadline-miss rate of a static allocation (the
// sensitivity analysis the paper's fade-free model cannot express).
// nakagamiM = 1 is Rayleigh fading; math.Inf(1) reproduces the static model
// exactly. roundDeadline (when positive) is the per-round deadline used for
// violation counting.
func Replay(s *System, a Allocation, nakagamiM float64, rounds int, roundDeadline float64, rng *rand.Rand) (ReplaySummary, error) {
	return sim.Run(s, a, sim.Config{NakagamiM: nakagamiM, Rounds: rounds, RoundDeadline: roundDeadline}, rng)
}

// ReplaySummary aggregates a fading replay (see internal/sim).
type ReplaySummary = sim.Summary

// Serving types (see internal/serve): the concurrent allocation service
// with a fingerprint-keyed solution cache, warm starts, and an HTTP API.
type (
	// Server is the worker-pool allocation service.
	Server = serve.Server
	// ServeConfig parameterizes the service (pool size, cache, timeouts).
	ServeConfig = serve.Config
	// ServeQuantization controls fingerprint bucketing.
	ServeQuantization = serve.Quantization
	// ServeRequest is one instance to solve.
	ServeRequest = serve.Request
	// ServeResponse is the outcome of one request.
	ServeResponse = serve.Response
	// ServeStats is a snapshot of the service counters.
	ServeStats = serve.Snapshot
	// ServeFingerprint is a two-granularity instance fingerprint.
	ServeFingerprint = serve.Fingerprint
	// ServeSolverName selects the answering algorithm of a request.
	ServeSolverName = serve.SolverName
	// SolveRequestJSON and SystemJSON are the HTTP wire forms.
	SolveRequestJSON = serve.SolveRequestJSON
	// SolveResponseJSON is the solve response wire form.
	SolveResponseJSON = serve.SolveResponseJSON
	// SystemJSON is the wire form of a System.
	SystemJSON = serve.SystemJSON
	// ServeBatchItem is one SolveBatch outcome.
	ServeBatchItem = serve.BatchItem
	// ServePriority ranks batch work against interactive traffic.
	ServePriority = serve.Priority
	// SolveBatchRequestJSON and SolveBatchResponseJSON are the
	// POST /v1/solve-batch wire forms.
	SolveBatchRequestJSON  = serve.SolveBatchRequestJSON
	SolveBatchResponseJSON = serve.SolveBatchResponseJSON
	// BatchItemJSON is one item of a batch response.
	BatchItemJSON = serve.BatchItemJSON
	// BucketSnapshot is one topology bucket's hit-rate view in ServeStats.
	BucketSnapshot = serve.BucketSnapshot
)

// Re-exported batch priorities.
const (
	// ServePriorityInteractive competes with live single solves.
	ServePriorityInteractive = serve.PriorityInteractive
	// ServePriorityBulk queues behind them (the batch default).
	ServePriorityBulk = serve.PriorityBulk
)

// Re-exported response sources.
const (
	// ServeSourceCache marks responses answered from the solution cache.
	ServeSourceCache = serve.SourceCache
	// ServeSourceWarm marks solves seeded from a topology neighbour.
	ServeSourceWarm = serve.SourceWarm
	// ServeSourceCold marks solves from the default start.
	ServeSourceCold = serve.SourceCold
)

// Re-exported solver selectors for the serving path.
const (
	// ServeSolverAlgorithm2 is the paper's alternating optimizer (default).
	ServeSolverAlgorithm2 = serve.SolverAlgorithm2
	// ServeSolverScheme1 is the Yang et al. comparator (deadline mode).
	ServeSolverScheme1 = serve.SolverScheme1
	// ServeSolverSimplified is the linearized-Shannon baseline (weighted).
	ServeSolverSimplified = serve.SolverSimplified
)

// NewServer builds an allocation server and starts its worker pool; call
// Close (or cancel a Serve context) to stop it.
func NewServer(cfg ServeConfig) *Server { return serve.New(cfg) }

// Cluster types (see internal/cluster): the multi-cell router sharding
// per-cell servers with cross-cell device handoff and aggregated stats.
type (
	// Cluster routes requests across per-cell allocation servers.
	Cluster = cluster.Router
	// ClusterConfig parameterizes the cluster (cell count, per-cell
	// server template, routing state bounds).
	ClusterConfig = cluster.Config
	// ClusterStats is the aggregate + per-cell counter snapshot.
	ClusterStats = cluster.Stats
	// ClusterCellStats is one cell's tagged snapshot.
	ClusterCellStats = cluster.CellStats
	// ClusterAggregate is the cluster-wide rollup.
	ClusterAggregate = cluster.Aggregate
	// HandoffReport summarizes one cross-cell device handoff.
	HandoffReport = cluster.HandoffReport
	// HandoffRequestJSON is the POST /v1/handoff wire form.
	HandoffRequestJSON = cluster.HandoffRequestJSON
	// ClusterSolveResponseJSON is a solve response plus its serving cell.
	ClusterSolveResponseJSON = cluster.SolveResponseJSON
	// ClusterSolveBatchResponseJSON is the routed batch response wire form.
	ClusterSolveBatchResponseJSON = cluster.SolveBatchResponseJSON
	// ClusterBatchItemJSON is one routed batch item plus its serving cell.
	ClusterBatchItemJSON = cluster.BatchItemJSON
)

// ClusterCellAuto routes a request by device pin / consistent hash instead
// of an explicit cell index.
const ClusterCellAuto = cluster.CellAuto

// NewCluster builds a multi-cell router and starts every cell's worker
// pool; call Close to stop them.
func NewCluster(cfg ClusterConfig) *Cluster { return cluster.New(cfg) }

// Elastic-membership types (see internal/cluster): runtime cell add/remove
// and batched mass migration.
type (
	// ClusterMove is one device's planned migration in a mass handoff.
	ClusterMove = cluster.Move
	// MassHandoffReport summarizes one batched migration.
	MassHandoffReport = cluster.MassHandoffReport
	// ClusterCellFlow counts per-cell instance flow in a mass migration.
	ClusterCellFlow = cluster.CellFlow
	// ClusterUnknownCellError is the typed unknown-cell error (unwraps to
	// ClusterErrUnknownCell; HTTP front ends answer it with the uniform
	// 404 {"error":"unknown_cell","cell":N} body).
	ClusterUnknownCellError = cluster.UnknownCellError
	// ClusterErrorJSON is the uniform error body of cluster and
	// control-plane endpoints.
	ClusterErrorJSON = cluster.ErrorJSON
)

// Re-exported membership errors.
var (
	// ClusterErrUnknownCell flags a cell ID that is not a member.
	ClusterErrUnknownCell = cluster.ErrUnknownCell
	// ClusterErrLastCell refuses removing/draining the final cell.
	ClusterErrLastCell = cluster.ErrLastCell
)

// Control-plane types (see internal/ctrl): the elastic-cluster layer that
// owns ring membership and bulk state migration.
type (
	// ControlPlane owns runtime membership over a Cluster (and optionally
	// the stream manager mounted on it).
	ControlPlane = ctrl.Plane
	// CtrlStats is the control plane's counter snapshot (the "ctrl"
	// section of GET /v1/stats).
	CtrlStats = ctrl.Snapshot
	// AddCellReport reports one cell addition (ID, generation, backfill).
	AddCellReport = ctrl.AddCellReport
	// DrainReport reports one cell drain + removal.
	DrainReport = ctrl.DrainReport
	// RebalancePlan is the dry-run per-cell moved-key view.
	RebalancePlan = ctrl.RebalancePlan
	// RebalanceReport reports one executed rebalance.
	RebalanceReport = ctrl.RebalanceReport
)

// NewControlPlane builds the control plane over a cluster router; mgr may
// be nil when no streaming layer is mounted (drains then skip session
// suspension).
func NewControlPlane(c *Cluster, mgr *StreamManager) *ControlPlane { return ctrl.New(c, mgr) }

// Streaming types (see internal/stream): the session-oriented gain-delta
// subsystem layered over the allocation service and the cluster.
type (
	// StreamManager owns the delta-session table over one backend.
	StreamManager = stream.Manager
	// StreamConfig bounds the session table (max sessions, idle TTL).
	StreamConfig = stream.Config
	// StreamBackend abstracts what sessions re-solve against (a single
	// server or a cluster router).
	StreamBackend = stream.Backend
	// StreamSession pins one client's authoritative system server-side.
	StreamSession = stream.Session
	// StreamDelta is one sparse gain/weight/deadline update.
	StreamDelta = stream.Delta
	// StreamUpdate is the outcome of one applied delta.
	StreamUpdate = stream.Update
	// StreamSnapshot is the streaming layer's counter snapshot.
	StreamSnapshot = stream.Snapshot
	// StreamCloseSummary reports a closed session's final state.
	StreamCloseSummary = stream.CloseSummary
	// StreamOpenResponseJSON is the POST /v1/stream response wire form.
	StreamOpenResponseJSON = stream.OpenResponseJSON
	// StreamDeltaJSON is one NDJSON delta line.
	StreamDeltaJSON = stream.DeltaJSON
	// StreamUpdateJSON is one NDJSON update line.
	StreamUpdateJSON = stream.UpdateJSON
	// StreamWeightsJSON is the wire form of a weight update.
	StreamWeightsJSON = stream.WeightsJSON
)

// Re-exported streaming errors (typed rejection of bad delta streams).
var (
	// StreamErrStaleSeq rejects sequence-number regressions and replays.
	StreamErrStaleSeq = stream.ErrStaleSeq
	// StreamErrBadDelta rejects malformed deltas (bad index/value/mode).
	StreamErrBadDelta = stream.ErrBadDelta
	// StreamErrNoSession flags unknown, closed or expired sessions.
	StreamErrNoSession = stream.ErrNoSession
	// StreamErrSessionLimit rejects opens beyond MaxSessions.
	StreamErrSessionLimit = stream.ErrSessionLimit
)

// NewStreamManager builds a delta-session manager over a backend and starts
// its expiry sweeper; call Close to stop it (the backend stays up).
func NewStreamManager(be StreamBackend, cfg StreamConfig) *StreamManager {
	return stream.NewManager(be, cfg)
}

// NewStreamServeBackend adapts a single allocation server for sessions.
func NewStreamServeBackend(s *Server) StreamBackend { return stream.NewServeBackend(s) }

// NewStreamClusterBackend adapts a cluster router for sessions (deltas are
// device-routed, so sessions follow their device across handoffs).
func NewStreamClusterBackend(c *Cluster) StreamBackend { return stream.NewClusterBackend(c) }

// StreamHandler mounts the streaming API (POST /v1/stream, NDJSON
// POST /v1/stream/{id}/deltas, DELETE /v1/stream/{id}, merged /v1/stats and
// /metrics) over the backend's base HTTP API; a drop-in replacement for it.
func StreamHandler(m *StreamManager) http.Handler { return stream.Handler(m) }

// StreamNDJSONContentType is the media type of delta and update streams.
const StreamNDJSONContentType = stream.NDJSONContentType

// StreamDeltaConn is a live client connection to a session's deltas
// endpoint (Send a delta line, Recv the re-solve update).
type StreamDeltaConn = stream.DeltaStream

// StreamOpenSession opens a delta session over HTTP (the client half of
// POST /v1/stream).
func StreamOpenSession(baseURL string, req SolveRequestJSON) (StreamOpenResponseJSON, error) {
	return stream.OpenSession(baseURL, req)
}

// StreamOpenDeltas connects to an open session's NDJSON deltas endpoint.
func StreamOpenDeltas(baseURL, sessionID string) (*StreamDeltaConn, error) {
	return stream.OpenDeltaStream(baseURL, sessionID)
}

// FingerprintInstance hashes an instance at cache and topology granularity.
func FingerprintInstance(s *System, w Weights, opts Options, q ServeQuantization) ServeFingerprint {
	return serve.FingerprintInstance(s, w, opts, q)
}

// SystemToJSON converts a system to the HTTP wire form.
func SystemToJSON(s *System) SystemJSON { return serve.SystemToJSON(s) }

// SystemFromJSON converts the HTTP wire form back to a checked System.
func SystemFromJSON(in SystemJSON) (*System, error) { return serve.SystemFromJSON(in) }

// Observability types (see internal/obs): request-scoped solve-lifecycle
// tracing, per-phase latency histograms and structured logging.
type (
	// ObsCollector owns a process's trace ring, slowest-N exemplars and
	// per-phase histograms; all methods are nil-safe, so wiring is optional.
	ObsCollector = obs.Collector
	// ObsConfig tunes sampling, the slow threshold and retention sizes.
	ObsConfig = obs.Config
	// ObsTrace is one request's ordered span record (nil-safe methods).
	ObsTrace = obs.Trace
	// ObsSpan is one recorded phase of a trace.
	ObsSpan = obs.Span
	// ObsAttr carries optional span attributes (cell, detail, value).
	ObsAttr = obs.Attr
	// ObsTraceJSON is the GET /debug/traces wire form of one trace.
	ObsTraceJSON = obs.TraceJSON
	// ObsTraceQuery is the validated GET /debug/traces query (limit,
	// min_duration, trace_id).
	ObsTraceQuery = obs.TraceQuery
)

// ObsDebugPath is the trace-inspection endpoint mounted by ObsMiddleware.
const ObsDebugPath = obs.DebugPath

// NewObsCollector builds a trace collector; the zero config applies the
// defaults (1-in-16 sampling, 250ms slow threshold, 64-entry ring).
func NewObsCollector(cfg ObsConfig) *ObsCollector { return obs.NewCollector(cfg) }

// ObsMiddleware wraps an HTTP handler with lifecycle tracing: it starts a
// trace per request (X-Trace-Id on the response), serves GET /debug/traces,
// and appends the obs histograms to GET /metrics. A nil collector passes
// requests through untouched.
func ObsMiddleware(c *ObsCollector, next http.Handler) http.Handler {
	return obs.Middleware(c, next)
}

// ObsFromContext returns the context's trace, or nil (whose methods no-op).
func ObsFromContext(ctx context.Context) *ObsTrace { return obs.FromContext(ctx) }

// ObsSetupLogger installs a structured slog default logger writing to w at
// the named level ("debug", "info", "warn", "error"; "" means info), in
// JSON when jsonOut is set and human-readable text otherwise.
func ObsSetupLogger(w io.Writer, level string, jsonOut bool) (*slog.Logger, error) {
	return obs.SetupDefault(w, level, jsonOut)
}

// ObsVersionString renders the binary's build info (module, version, VCS
// revision, Go version) on one line, for -version flags.
func ObsVersionString() string { return obs.VersionString() }

// Telemetry types (see internal/obs/telemetry): the distributed telemetry
// plane — batched span export from cells, cross-process trace assembly at
// the router, and the live ops dashboard.
type (
	// ObsMiddlewareConfig extends ObsMiddleware with replacement trace and
	// span-ingest handlers, extra /v1/stats sections and /metrics appenders.
	ObsMiddlewareConfig = obs.MiddlewareConfig
	// TelemetryExporter batches finished traces and ships them to an
	// aggregator (in-process and/or over POST /debug/spans).
	TelemetryExporter = telemetry.Exporter
	// TelemetryExporterConfig tunes the exporter's buffering and target.
	TelemetryExporterConfig = telemetry.ExporterConfig
	// TelemetryAggregator assembles per-process span batches into
	// cross-process traces keyed by trace ID.
	TelemetryAggregator = telemetry.Aggregator
	// TelemetryAggregatorConfig tunes assembly retention and promotion.
	TelemetryAggregatorConfig = telemetry.AggregatorConfig
	// TelemetryAssembledTraceJSON is one assembled cross-process trace.
	TelemetryAssembledTraceJSON = telemetry.AssembledTraceJSON
	// TelemetryDashboardConfig configures the SSE ops dashboard feed.
	TelemetryDashboardConfig = telemetry.DashboardConfig
	// TelemetrySource is one named dashboard section fetcher.
	TelemetrySource = telemetry.Source
)

// Telemetry-plane endpoints: span ingest (POST, internal) and the SSE ops
// dashboard (GET, debug listener).
const (
	ObsSpansPath           = obs.SpansPath
	TelemetryDashboardPath = telemetry.DashboardPath
)

// NewTelemetryExporter builds and starts a span exporter; Close flushes and
// stops it. Feed it from a collector via ObsCollector.SetSink(exp.Enqueue).
func NewTelemetryExporter(cfg TelemetryExporterConfig) *TelemetryExporter {
	return telemetry.NewExporter(cfg)
}

// NewTelemetryAggregator builds a cross-process trace assembler.
func NewTelemetryAggregator(cfg TelemetryAggregatorConfig) *TelemetryAggregator {
	return telemetry.NewAggregator(cfg)
}

// TelemetryTracesHandler serves GET /debug/traces with both the local
// collector's rings and the aggregator's assembled cross-process traces.
func TelemetryTracesHandler(c *ObsCollector, a *TelemetryAggregator) http.Handler {
	return telemetry.TracesHandler(c, a)
}

// TelemetryDashboardHandler serves the GET /debug/dashboard SSE feed.
func TelemetryDashboardHandler(cfg TelemetryDashboardConfig) http.Handler {
	return telemetry.DashboardHandler(cfg)
}

// ObsMiddlewareWith is ObsMiddleware plus telemetry-plane wiring: custom
// trace/span handlers and extra stats sections / metrics appenders.
func ObsMiddlewareWith(c *ObsCollector, mc ObsMiddlewareConfig, next http.Handler) http.Handler {
	return obs.MiddlewareWith(c, mc, next)
}

// Incident-forensics types (see internal/obs/forensics): the always-on
// flight recorder, the SLO-triggered pprof capture trigger, runtime
// vitals, and the one-shot /debug/incident bundle.
type (
	// FlightRecorder is the bounded ring of per-request wide events fed
	// from the collector sink (GET /debug/flight).
	FlightRecorder = forensics.FlightRecorder
	// FlightEvent is one request's wide event.
	FlightEvent = forensics.Event
	// ProfileTrigger captures pprof profiles on SLO transitions, with
	// rate limiting and bounded disk retention.
	ProfileTrigger = forensics.ProfileTrigger
	// ProfileConfig tunes a ProfileTrigger (dir, CPU window, retention).
	ProfileConfig = forensics.ProfileConfig
	// ProfileCapture records one trigger firing.
	ProfileCapture = forensics.Capture
	// IncidentBundleConfig wires the GET /debug/incident tar.gz contents.
	IncidentBundleConfig = forensics.BundleConfig
	// IncidentSection is one named JSON document of the incident bundle.
	IncidentSection = forensics.Section
	// RuntimeVitals is one reading of the Go runtime's health signals.
	RuntimeVitals = forensics.Vitals
	// TelemetryDebugMuxConfig wires the shared -debug-addr surface.
	TelemetryDebugMuxConfig = telemetry.DebugMuxConfig
)

// Forensics endpoints on the public middleware and the debug listener.
const (
	ObsFlightPath   = obs.FlightPath
	ObsIncidentPath = obs.IncidentPath
)

// NewFlightRecorder builds a flight recorder retaining the last n wide
// events (n <= 0 applies the 4096-event default). Chain it into the
// collector sink: col.SetSink(func(t ObsTraceJSON) { ...; fr.Observe(t) }).
func NewFlightRecorder(n int) *FlightRecorder { return forensics.NewFlightRecorder(n) }

// NewProfileTrigger builds an SLO-triggered pprof capturer rooted at
// cfg.Dir; Close waits for any in-flight CPU profile.
func NewProfileTrigger(cfg ProfileConfig) (*ProfileTrigger, error) {
	return forensics.NewProfileTrigger(cfg)
}

// IncidentHandler serves GET /debug/incident: one tar.gz assembling the
// flight window, runtime vitals, the configured sections, and retained
// profile captures.
func IncidentHandler(cfg IncidentBundleConfig) http.Handler {
	return forensics.IncidentHandler(cfg)
}

// ReadRuntimeVitals samples the Go runtime (cheap; no stop-the-world).
func ReadRuntimeVitals() RuntimeVitals { return forensics.ReadVitals() }

// WriteRuntimePrometheus appends the obs_runtime_* gauges to a /metrics
// exposition.
func WriteRuntimePrometheus(w io.Writer) error { return forensics.WriteRuntimePrometheus(w) }

// TelemetryDebugMux builds the standalone debug mux every cmd mounts on
// -debug-addr: pprof plus whatever trace, dashboard, flight, incident and
// metrics handlers are wired.
func TelemetryDebugMux(cfg TelemetryDebugMuxConfig) http.Handler {
	return telemetry.DebugMux(cfg)
}

// TelemetryMetricsHandler composes Prometheus-text appenders into a
// standalone GET /metrics handler for the debug mux of cmds whose only
// listener is -debug-addr (flopt, experiments).
func TelemetryMetricsHandler(writers ...func(io.Writer) error) http.Handler {
	return telemetry.MetricsHandler(writers...)
}

// Health types (see internal/health): the rolling-window SLO engine with
// its alert ring and autoscale advisor.
type (
	// HealthEvaluator maintains per-cell rolling windows, judges SLO rules
	// with hysteresis, keeps the alert ring, and advises on scaling.
	HealthEvaluator = health.Evaluator
	// HealthConfig tunes the evaluator (tick, window, rules, advisor).
	HealthConfig = health.Config
	// HealthAdvisorConfig tunes the autoscale policy (bounds, sustained-
	// signal widths, cooldown).
	HealthAdvisorConfig = health.AdvisorConfig
	// HealthRule is one SLO (metric, threshold, hysteresis widths).
	HealthRule = health.Rule
	// HealthState is an SLO standing: ok, degraded or breached.
	HealthState = health.State
	// HealthAlert is one event in the ring behind GET /debug/alerts.
	HealthAlert = health.Alert
	// HealthWindowStats is one cell's aggregated rolling window.
	HealthWindowStats = health.WindowStats
	// HealthCellSample is one cell's raw per-tick reading.
	HealthCellSample = health.CellSample
	// HealthSource feeds the evaluator one reading per cell per tick.
	HealthSource = health.Source
	// HealthActuator enacts advisor plans (the ctrl plane adapts to it).
	HealthActuator = health.Actuator
	// AutoscalePlan is the advisor's recommendation
	// (GET /v1/autoscale/plan).
	AutoscalePlan = health.Plan
	// HealthJSON is the GET /v1/health body.
	HealthJSON = health.HealthJSON
	// HealthMetric names the window aggregate an SLO rule judges.
	HealthMetric = health.Metric
	// HealthTransition is one SLO state change, delivered to the
	// HealthConfig.OnTransition hook (the profile trigger's feed).
	HealthTransition = health.Transition
	// HealthRuntimeSample is one process-level vitals reading judged by
	// the runtime rules.
	HealthRuntimeSample = health.RuntimeSample
)

// Window metrics health rules can bind to.
const (
	HealthMetricQueueWaitP50 = health.MetricQueueWaitP50
	HealthMetricQueueWaitP99 = health.MetricQueueWaitP99
	HealthMetricSolveP50     = health.MetricSolveP50
	HealthMetricSolveP99     = health.MetricSolveP99
	HealthMetricErrorRate    = health.MetricErrorRate
	HealthMetricCacheHitRate = health.MetricCacheHitRate
	HealthMetricQueueDepth   = health.MetricQueueDepth
	HealthMetricRequestRate  = health.MetricRequestRate
)

// Process-level runtime metrics (judged against pseudo-cell
// HealthProcessCell rather than any serving cell).
const (
	HealthMetricGoroutines      = health.MetricGoroutines
	HealthMetricHeapBytes       = health.MetricHeapBytes
	HealthMetricGCPauseP99      = health.MetricGCPauseP99
	HealthMetricSchedLatencyP99 = health.MetricSchedLatencyP99
)

// Health states, severity-ordered, and the pseudo-cell of process-level
// runtime-rule transitions.
const (
	HealthStateOK       = health.StateOK
	HealthStateDegraded = health.StateDegraded
	HealthStateBreached = health.StateBreached
	HealthProcessCell   = health.ProcessCell
)

// HealthDefaultRules returns the stock SLO set: queue-wait p99 under 50ms,
// solve p99 under 500ms, error rate under 5%, and a cache-hit-rate floor.
func HealthDefaultRules() []HealthRule { return health.DefaultRules() }

// HealthDefaultRuntimeRules returns the stock process-level rule set
// (goroutine-leak ceiling, GC-pause-p99 bar).
func HealthDefaultRuntimeRules() []HealthRule { return health.DefaultRuntimeRules() }

// NewHealthEvaluator builds the health engine; call Start to poll on the
// configured tick (or drive Observe directly) and Close to stop.
func NewHealthEvaluator(cfg HealthConfig) *HealthEvaluator { return health.New(cfg) }

// HealthRouterSource samples every live cell of a cluster router.
func HealthRouterSource(c *Cluster) HealthSource { return health.RouterSource(c) }

// HealthServerSource samples a standalone server as cell 0.
func HealthServerSource(s *Server) HealthSource { return health.ServerSource(s) }

// NewCtrlActuator adapts the control plane's autoscale entry points
// (AutoscaleAddCell / AutoscaleDrainCell) to the health layer's Actuator.
func NewCtrlActuator(p *ControlPlane) HealthActuator { return ctrl.Actuator{Plane: p} }

// Replication & crash-recovery types (see internal/replica): periodic
// snapshot/restore of a serving process and ring-successor replication of
// hot cell state.
type (
	// ReplicaSnapshot is the full durable state of one serving process
	// (every cell's cache/warm/dual state plus open stream sessions).
	ReplicaSnapshot = replica.Snapshot
	// ReplicaSnapshotter persists periodic snapshots; Close flushes one
	// final snapshot on graceful shutdown.
	ReplicaSnapshotter = replica.Snapshotter
	// ReplicaSnapshotterConfig tunes the snapshotter (path, interval,
	// capture hook).
	ReplicaSnapshotterConfig = replica.SnapshotterConfig
	// Replicator ships each cell's hot state to its ring successor and
	// promotes it after a crash removal.
	Replicator = replica.Replicator
	// ReplicatorConfig tunes the replicator (flush interval, dirty bound).
	ReplicatorConfig = replica.ReplicatorConfig
	// ReplicaRestoreReport summarizes what a boot restore landed.
	ReplicaRestoreReport = replica.RestoreReport
	// ReplicaPromoteReport summarizes one crash promotion.
	ReplicaPromoteReport = replica.PromoteReport
	// CrashReport reports one drain-less cell removal (ctrl.CrashCell).
	CrashReport = ctrl.CrashReport
	// StreamSessionSnapshot is one serialized stream session.
	StreamSessionSnapshot = stream.SessionSnapshot
	// ServerState is one server's serializable cache/warm/dual state.
	ServerState = serve.ServerState
)

// Re-exported snapshot-codec errors (restore degrades to a cold start on
// either — boot never fails because of a snapshot).
var (
	// ErrSnapshotVersion flags a snapshot written by an incompatible codec.
	ErrSnapshotVersion = replica.ErrSnapshotVersion
	// ErrSnapshotCorrupt flags a truncated or checksum-failing snapshot.
	ErrSnapshotCorrupt = replica.ErrSnapshotCorrupt
)

// NewReplicaSnapshotter builds a snapshotter; call Start for the periodic
// loop and Close to flush the final snapshot.
func NewReplicaSnapshotter(cfg ReplicaSnapshotterConfig) *ReplicaSnapshotter {
	return replica.NewSnapshotter(cfg)
}

// ReplicaCaptureServer builds a single-server snapshot capture (mgr may be
// nil).
func ReplicaCaptureServer(s *Server, mgr *StreamManager) func() ReplicaSnapshot {
	return replica.CaptureServer(s, mgr)
}

// ReplicaCaptureCluster builds a whole-cluster snapshot capture (mgr may
// be nil).
func ReplicaCaptureCluster(c *Cluster, mgr *StreamManager) func() ReplicaSnapshot {
	return replica.CaptureCluster(c, mgr)
}

// ReplicaRestoreServer imports a snapshot into a single-server process.
func ReplicaRestoreServer(s *Server, mgr *StreamManager, snap ReplicaSnapshot) ReplicaRestoreReport {
	return replica.RestoreServer(s, mgr, snap)
}

// ReplicaRestoreCluster imports a snapshot into a cluster, spreading
// orphaned cell sections over the live cells.
func ReplicaRestoreCluster(c *Cluster, mgr *StreamManager, snap ReplicaSnapshot) ReplicaRestoreReport {
	return replica.RestoreCluster(c, mgr, snap)
}

// ReplicaBootRestore loads the snapshot at path and restores it, degrading
// every failure to a cold start (missing file: silent; corrupt/version-
// skewed: WARN). Boot never fails because of a snapshot.
func ReplicaBootRestore(path string, log *slog.Logger, restore func(ReplicaSnapshot) ReplicaRestoreReport) (ReplicaRestoreReport, bool) {
	return replica.BootRestore(path, log, restore)
}

// NewReplicator builds the ring-successor replicator over a cluster and
// installs its solve hook; call Start for the flush loop, Close to stop.
func NewReplicator(cfg ReplicatorConfig) *Replicator { return replica.NewReplicator(cfg) }
