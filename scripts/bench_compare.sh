#!/usr/bin/env bash
# scripts/bench_compare.sh — diff two bench.sh JSON baselines and fail when
# any benchmark present in BOTH files regressed its ns/op by more than the
# threshold. Guards the committed perf trajectory (BENCH_PR3.json → ...):
# a PR that lands a new baseline must not quietly give back the wins the
# earlier PRs recorded.
#
# Usage:
#   scripts/bench_compare.sh OLD.json NEW.json [threshold_pct]
#   scripts/bench_compare.sh BENCH_PR6.json BENCH_PR7.json       # default 25
#
# Benchmarks that appear in only one file (added or retired) are reported
# but never fail the check — the contract covers the overlap only.
set -euo pipefail
cd "$(dirname "$0")/.."

if [ $# -lt 2 ]; then
    echo "usage: $0 OLD.json NEW.json [threshold_pct]" >&2
    exit 2
fi
old="$1"
new="$2"
threshold="${3:-25}"

for f in "$old" "$new"; do
    if [ ! -r "$f" ]; then
        echo "bench_compare: cannot read $f" >&2
        exit 2
    fi
done

# Each baseline line looks like:
#   "BenchmarkFoo": {"ns_per_op": 12345, "B_per_op": 67, ...},
# Pull name + ns_per_op; everything else in the object is informational.
extract() {
    awk -F'"' '
    /"ns_per_op"/ {
        name = $2
        line = $0
        sub(/.*"ns_per_op": */, "", line)
        sub(/[,}].*/, "", line)
        print name, line
    }' "$1"
}

extract "$old" | sort > /tmp/bench_old.$$
extract "$new" | sort > /tmp/bench_new.$$
trap 'rm -f /tmp/bench_old.$$ /tmp/bench_new.$$' EXIT

rc=0
join /tmp/bench_old.$$ /tmp/bench_new.$$ | awk -v thr="$threshold" -v old="$old" -v new="$new" '
{
    name = $1; was = $2; now = $3
    delta = was > 0 ? (now - was) * 100.0 / was : 0
    mark = ""
    if (delta > thr) { mark = "  << REGRESSION"; bad++ }
    printf "%-36s %14.0f -> %14.0f ns/op  %+7.1f%%%s\n", name, was, now, delta, mark
    n++
}
END {
    if (n == 0) { print "bench_compare: no overlapping benchmarks between " old " and " new > "/dev/stderr"; exit 2 }
    printf "\n%d benchmarks compared (%s vs %s), threshold +%s%%\n", n, old, new, thr
    if (bad > 0) { printf "FAIL: %d benchmark(s) regressed ns/op beyond the threshold\n", bad; exit 1 }
    print "OK: no ns/op regression beyond the threshold"
}' || rc=$?

# Report (but never fail on) the non-overlap so added/retired benchmarks
# stay visible in the log.
comm -23 <(cut -d' ' -f1 /tmp/bench_old.$$) <(cut -d' ' -f1 /tmp/bench_new.$$) | while read -r b; do echo "only in $old: $b"; done
comm -13 <(cut -d' ' -f1 /tmp/bench_old.$$) <(cut -d' ' -f1 /tmp/bench_new.$$) | while read -r b; do echo "only in $new: $b"; done
exit "$rc"
