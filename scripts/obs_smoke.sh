#!/usr/bin/env bash
# scripts/obs_smoke.sh — end-to-end observability smoke test: start
# flserved with tracing always-on (-trace-sample 1) and a separate debug
# listener, drive one solve through the public API, and assert every
# observability surface answers:
#
#   - the solve response carries an X-Trace-Id header,
#   - GET /metrics includes the obs_phase_seconds histogram series,
#   - GET /debug/traces (public listener) retained the trace,
#   - the -debug-addr listener serves /debug/traces and net/http/pprof.
#
# Used by CI's "obs smoke" step; runnable locally with no arguments.
set -euo pipefail
cd "$(dirname "$0")/.."

PORT="${PORT:-18080}"
DEBUG_PORT="${DEBUG_PORT:-18081}"
BIN="$(mktemp -d)/flserved"
trap 'kill "${pid:-0}" 2>/dev/null || true; rm -rf "$(dirname "$BIN")"' EXIT

go build -o "$BIN" ./cmd/flserved
"$BIN" -addr ":$PORT" -debug-addr ":$DEBUG_PORT" -trace-sample 1 -log-json &
pid=$!

for _ in $(seq 1 50); do
    curl -fsS "http://localhost:$PORT/v1/stats" >/dev/null 2>&1 && break
    sleep 0.2
done

# A tiny 3-device FL system with the paper's default constants (20 MHz
# uplink, -174 dBm/Hz noise, 0-12 dBm power box, 10 MHz - 2 GHz CPU box).
dev='{"samples":500,"cycles_per_sample":2e4,"upload_bits":2.81e4,"gain":1e-10,"f_min_hz":1e7,"f_max_hz":2e9,"p_min_w":1e-3,"p_max_w":1.585e-2}'
body='{"device_id":"smoke-1","weights":{"w1":0.5,"w2":0.5},"system":{"bandwidth_hz":2e7,"n0_w_per_hz":3.98e-21,"kappa":1e-28,"local_iters":10,"global_rounds":400,"devices":['"$dev,$dev,$dev"']}}'

out="$(mktemp)"
headers="$(curl -fsS -D - -o "$out" -H 'Content-Type: application/json' \
    -d "$body" "http://localhost:$PORT/v1/solve")"
grep -qi '^X-Trace-Id:' <<<"$headers" ||
    { echo "obs smoke: no X-Trace-Id on the solve response" >&2; exit 1; }
grep -q '"objective"' "$out" ||
    { echo "obs smoke: solve failed: $(cat "$out")" >&2; exit 1; }

curl -fsS "http://localhost:$PORT/metrics" -o "$out"
grep -q 'obs_phase_seconds_bucket' "$out" ||
    { echo "obs smoke: obs_phase_seconds_bucket missing from /metrics" >&2; exit 1; }
curl -fsS "http://localhost:$PORT/debug/traces" -o "$out"
grep -q '"trace_id"' "$out" ||
    { echo "obs smoke: no retained trace on the public /debug/traces" >&2; exit 1; }
curl -fsS "http://localhost:$DEBUG_PORT/debug/traces" -o "$out"
grep -q '"trace_id"' "$out" ||
    { echo "obs smoke: no retained trace on the -debug-addr listener" >&2; exit 1; }
curl -fsS "http://localhost:$DEBUG_PORT/debug/pprof/cmdline" >/dev/null ||
    { echo "obs smoke: pprof not served on the -debug-addr listener" >&2; exit 1; }

kill "$pid" 2>/dev/null || true
wait "$pid" 2>/dev/null || true

# --- Telemetry plane: two-cell cluster + remote span export -------------
# Start a 2-cell flcluster (the router/aggregator) and a separate flserved
# process exporting its span batches to the router. Assert:
#   - a routed solve assembles on the router's /debug/traces with route
#     plus per-cell solver phase spans,
#   - a solve served by the OTHER process shows up assembled on the
#     router too (spans crossed the process boundary via /debug/spans),
#   - /metrics carries an OpenMetrics exemplar linking a bucket to a
#     trace ID.
CLUSTER_PORT="${CLUSTER_PORT:-18082}"
CELL_PORT="${CELL_PORT:-18083}"
CBIN="$(dirname "$BIN")/flcluster"
go build -o "$CBIN" ./cmd/flcluster
"$CBIN" -addr ":$CLUSTER_PORT" -cells 2 -trace-sample 1 -log-json &
cpid=$!
"$BIN" -addr ":$CELL_PORT" -trace-sample 1 \
    -span-export "http://localhost:$CLUSTER_PORT" -log-json &
pid=$!
trap 'kill "${pid:-0}" "${cpid:-0}" 2>/dev/null || true; rm -rf "$(dirname "$BIN")"' EXIT

for _ in $(seq 1 50); do
    curl -fsS "http://localhost:$CLUSTER_PORT/v1/stats" >/dev/null 2>&1 &&
        curl -fsS "http://localhost:$CELL_PORT/v1/stats" >/dev/null 2>&1 && break
    sleep 0.2
done

# Routed solve through the cluster: route span + cell solver spans must
# assemble into one trace on the router.
curl -fsS -H 'Content-Type: application/json' -d "$body" \
    "http://localhost:$CLUSTER_PORT/v1/solve" -o "$out"
grep -q '"objective"' "$out" ||
    { echo "obs smoke: cluster solve failed: $(cat "$out")" >&2; exit 1; }
assembled=""
for _ in $(seq 1 30); do
    curl -fsS "http://localhost:$CLUSTER_PORT/debug/traces" -o "$out"
    if grep -q '"assembled"' "$out" && grep -q '"route"' "$out"; then
        assembled=ok
        break
    fi
    sleep 0.2
done
[ -n "$assembled" ] ||
    { echo "obs smoke: no assembled trace on the cluster router" >&2; exit 1; }
for phase in route queue_wait cache_lookup sp1 sp2; do
    grep -q "\"$phase\"" "$out" ||
        { echo "obs smoke: assembled trace missing $phase span" >&2; exit 1; }
done

# Distributed hop: a solve served by the flserved process must assemble
# on the ROUTER (its exporter POSTs span batches to /debug/spans there).
remote_trace="$(curl -fsS -D - -o /dev/null -H 'Content-Type: application/json' \
    -d "$body" "http://localhost:$CELL_PORT/v1/solve" |
    tr -d '\r' | awk 'tolower($1)=="x-trace-id:" {print $2}')"
[ -n "$remote_trace" ] ||
    { echo "obs smoke: no X-Trace-Id from the flserved cell" >&2; exit 1; }
distributed=""
for _ in $(seq 1 30); do
    curl -fsS "http://localhost:$CLUSTER_PORT/debug/traces?trace_id=$remote_trace" -o "$out"
    if grep -q '"flserved"' "$out"; then
        distributed=ok
        break
    fi
    sleep 0.2
done
[ -n "$distributed" ] ||
    { echo "obs smoke: flserved spans never assembled on the router" >&2; exit 1; }

# Exemplars: a histogram bucket on /metrics must carry a trace ID.
curl -fsS "http://localhost:$CLUSTER_PORT/metrics" -o "$out"
grep -q '# {trace_id="' "$out" ||
    { echo "obs smoke: no exemplar on the cluster /metrics" >&2; exit 1; }
rm -f "$out"

echo "obs smoke OK"
