#!/usr/bin/env bash
# scripts/crash_smoke.sh — end-to-end crash-recovery smoke test: start
# flcluster with ring-successor replication and snapshots on, warm a few
# device keyspaces, kill a cell WITHOUT draining, and assert the failure
# degraded to warm-but-not-cached instead of cold:
#
#   - the post-crash replay of a dead cell's device is source "warm" with
#     "dual_seeded":true on a surviving cell (its replica was promoted),
#   - /metrics records replica_promotions_total 1,
#   - a SIGTERM flushes a final snapshot, and a restarted process answers
#     the same request from its restored cache ("source":"cache").
#
# Used by CI's "crash smoke" step; runnable locally with no arguments.
set -euo pipefail
cd "$(dirname "$0")/.."

PORT="${PORT:-18090}"
TMP="$(mktemp -d)"
BIN="$TMP/flcluster"
SNAPDIR="$TMP/snap"
trap 'kill "${pid:-0}" 2>/dev/null || true; rm -rf "$TMP"' EXIT

go build -o "$BIN" ./cmd/flcluster

start_cluster() {
    "$BIN" -addr ":$PORT" -cells 3 -replicate \
        -snapshot-dir "$SNAPDIR" -snapshot-interval -1s -log-json &
    pid=$!
    for _ in $(seq 1 50); do
        curl -fsS "http://localhost:$PORT/v1/stats" >/dev/null 2>&1 && return 0
        sleep 0.2
    done
    echo "crash smoke: cluster did not come up" >&2
    exit 1
}
start_cluster

# A tiny 3-device FL system with the paper's default constants (20 MHz
# uplink, -174 dBm/Hz noise, 0-12 dBm power box, 10 MHz - 2 GHz CPU box).
# Each device ID gets a distinct sample count so even the TOPOLOGY
# fingerprints differ: smoke-0's keyspace (cache and warm bucket alike)
# then lives ONLY on the cell that served it, and the post-crash replay
# can't sneak a cache or warm hit off another device's state — a warm
# answer proves the promoted replica.
body_for() {
    local idx="${1##*-}"
    local dev='{"samples":'"$((500 + 50 * idx))"',"cycles_per_sample":2e4,"upload_bits":2.81e4,"gain":1e-10,"f_min_hz":1e7,"f_max_hz":2e9,"p_min_w":1e-3,"p_max_w":1.585e-2}'
    local sys='{"bandwidth_hz":2e7,"n0_w_per_hz":3.98e-21,"kappa":1e-28,"local_iters":10,"global_rounds":400,"devices":['"$dev,$dev,$dev"']}'
    echo '{"device_id":"'"$1"'","weights":{"w1":0.5,"w2":0.5},"system":'"$sys"'}'
}

solve() { # solve DEVICE -> response JSON on stdout
    curl -fsS -H 'Content-Type: application/json' \
        -d "$(body_for "$1")" "http://localhost:$PORT/v1/solve"
}
field() { # field JSON NAME -> first value of "NAME":VALUE
    grep -o "\"$2\":[^,}]*" <<<"$1" | head -1 | cut -d: -f2- | tr -d '"'
}

# Warm traffic: route a handful of devices, remember which cell served
# the first one — that cell is the crash victim.
out="$(solve smoke-0)"
victim="$(field "$out" cell)"
[ "$(field "$out" source)" = cold ] ||
    { echo "crash smoke: first solve not cold: $out" >&2; exit 1; }
for d in 1 2 3 4 5; do solve "smoke-$d" >/dev/null; done

# Let the replicator's 1s flush ship the warm state, then kill the victim.
sleep 2
curl -fsS -X POST "http://localhost:$PORT/v1/cells/$victim/crash" -o "$TMP/crash.json"
grep -q '"warm_seeds":0' "$TMP/crash.json" &&
    { echo "crash smoke: promotion shipped no warm seeds: $(cat "$TMP/crash.json")" >&2; exit 1; }

# The dead cell's device replays warm + dual-seeded on a survivor: the
# cache died with the cell, the replicated warm seed did not.
out="$(solve smoke-0)"
cell="$(field "$out" cell)"
src="$(field "$out" source)"
dual="$(field "$out" dual_seeded)"
if [ "$cell" = "$victim" ] || [ "$src" != warm ] || [ "$dual" != true ]; then
    echo "crash smoke: post-crash replay cell=$cell source=$src dual_seeded=$dual (victim=$victim), want warm+dual-seeded on a survivor" >&2
    exit 1
fi

curl -fsS "http://localhost:$PORT/metrics" -o "$TMP/metrics"
grep -q '^replica_promotions_total 1' "$TMP/metrics" ||
    { echo "crash smoke: replica_promotions_total missing from /metrics" >&2; exit 1; }

# Graceful shutdown flushes a final snapshot; the restarted process must
# answer the survivor's replay straight from its restored cache.
kill -TERM "$pid"
wait "$pid" 2>/dev/null || true
[ -f "$SNAPDIR/flcluster.snap" ] ||
    { echo "crash smoke: no snapshot written on SIGTERM" >&2; exit 1; }

# The fresh process routes by a fresh ring while the restore lands each
# snapshot section on its original cell ID, so probe every cell
# explicitly: the replay must be a cache hit SOMEWHERE in the cluster.
start_cluster
restored=""
for id in 0 1 2; do
    out="$(curl -fsS -H 'Content-Type: application/json' \
        -d "$(body_for smoke-0)" "http://localhost:$PORT/v1/cells/$id/solve")"
    [ "$(field "$out" source)" = cache ] && { restored=yes; break; }
done
[ -n "$restored" ] ||
    { echo "crash smoke: no cell answered the replay from the restored cache" >&2; exit 1; }
kill -TERM "$pid"
wait "$pid" 2>/dev/null || true

echo "crash smoke OK"
