#!/usr/bin/env bash
# scripts/incident_smoke.sh — end-to-end incident-forensics smoke test:
# start flserved undersized (-workers 1) with the profile trigger armed,
# slam it with cache-defeating concurrent solves until the queue-wait p99
# SLO trips, then assert the whole forensics arc:
#
#   - the breach automatically captures pprof profiles, filed as a
#     [profile] alert in /debug/alerts and on disk under -profile-dir,
#   - GET /debug/flight answers with per-request wide events,
#   - GET /debug/incident returns a non-empty tar.gz bundling flight
#     events, alerts, health windows, at least one assembled trace, and
#     at least one captured .pprof profile,
#   - /metrics carries the obs_runtime_* / obs_flight_* / obs_profile_*
#     series.
#
# Used by CI's "incident smoke" step; runnable locally with no arguments.
set -euo pipefail
cd "$(dirname "$0")/.."

PORT="${PORT:-18090}"
WORK="$(mktemp -d)"
BIN="$WORK/flserved"
trap 'kill "${pid:-0}" 2>/dev/null || true; rm -rf "$WORK"' EXIT

go build -o "$BIN" ./cmd/flserved
"$BIN" -addr ":$PORT" -trace-sample 1 -workers 1 -queue 512 \
    -health-tick 200ms -profile-dir "$WORK/profiles" \
    -profile-cpu-seconds 0.2 -profile-min-interval 1s -log-json &
pid=$!

for _ in $(seq 1 50); do
    curl -fsS "http://localhost:$PORT/v1/stats" >/dev/null 2>&1 && break
    sleep 0.2
done

# Cache-defeating load: every request carries a fresh channel-gain draw,
# so each solve is cold and queues behind the single worker. 50 devices
# per request keeps one solve slow enough that concurrent clients push
# queue wait past the 50ms SLO within a couple of health ticks.
mkbody() { # mkbody <salt>
    local devs="" i
    for i in $(seq 1 50); do
        [ -n "$devs" ] && devs+=","
        devs+='{"samples":500,"cycles_per_sample":2e4,"upload_bits":2.81e4,"gain":'"$1.$i"'e-13,"f_min_hz":1e7,"f_max_hz":2e9,"p_min_w":1e-3,"p_max_w":1.585e-2}'
    done
    printf '{"device_id":"smoke-%s","weights":{"w1":0.5,"w2":0.5},"system":{"bandwidth_hz":2e7,"n0_w_per_hz":3.98e-21,"kappa":1e-28,"local_iters":10,"global_rounds":400,"devices":[%s]}}' "$1" "$devs"
}

loaders=()
for w in $(seq 1 12); do
    (
        for j in $(seq 1 15); do
            curl -fsS -H 'Content-Type: application/json' \
                -d "$(mkbody "$w$j")" \
                "http://localhost:$PORT/v1/solve" >/dev/null 2>&1 || true
        done
    ) &
    loaders+=("$!")
done
wait "${loaders[@]}" # load clients done (the server keeps running)

out="$WORK/out"
# The breach transition fires the profile trigger; the capture lands in
# the alert ring as a [profile] event. Give the evaluator a few ticks.
captured=""
for _ in $(seq 1 50); do
    curl -fsS "http://localhost:$PORT/debug/alerts" -o "$out"
    if grep -q '"profile"' "$out" && grep -q 'profiles captured' "$out"; then
        captured=ok
        break
    fi
    sleep 0.2
done
[ -n "$captured" ] ||
    { echo "incident smoke: no [profile] alert after load: $(cat "$out")" >&2; exit 1; }
ls "$WORK"/profiles/cap-*/cpu.pprof >/dev/null 2>&1 ||
    { echo "incident smoke: no captured cpu.pprof under -profile-dir" >&2; exit 1; }

# Flight recorder: every request became one wide event.
curl -fsS "http://localhost:$PORT/debug/flight?limit=5" -o "$out"
grep -q '"trace_id"' "$out" ||
    { echo "incident smoke: /debug/flight has no events" >&2; exit 1; }

# Runtime vitals + forensics counters on /metrics.
curl -fsS "http://localhost:$PORT/metrics" -o "$out"
for series in obs_runtime_goroutines obs_runtime_heap_bytes obs_runtime_gc_pause_seconds \
    obs_flight_events_total obs_profile_captures_total; do
    grep -q "$series" "$out" ||
        { echo "incident smoke: $series missing from /metrics" >&2; exit 1; }
done

# The one-shot incident bundle: non-empty tar.gz with flight events,
# alerts, health windows, at least one assembled trace, and at least one
# profile file.
bundle="$WORK/incident.tar.gz"
curl -fsS "http://localhost:$PORT/debug/incident" -o "$bundle"
[ -s "$bundle" ] || { echo "incident smoke: empty bundle" >&2; exit 1; }
toc="$(tar -tzf "$bundle")"
for entry in meta.json flight.json runtime.json alerts.json health.json traces.json; do
    grep -q "^$entry\$" <<<"$toc" ||
        { echo "incident smoke: bundle missing $entry; contents: $toc" >&2; exit 1; }
done
grep -q '^profiles/cap-.*\.pprof$' <<<"$toc" ||
    { echo "incident smoke: bundle has no profile files; contents: $toc" >&2; exit 1; }
# -m: the bundle's header mtimes are the capture instant, which can sit
# fractionally ahead of this shell's clock — don't let tar warn on that.
tar -xzmf "$bundle" -C "$WORK" flight.json traces.json
grep -q '"trace_id"' "$WORK/flight.json" ||
    { echo "incident smoke: bundle flight.json has no events" >&2; exit 1; }
grep -q '"spans"' "$WORK/traces.json" ||
    { echo "incident smoke: bundle traces.json has no assembled trace" >&2; exit 1; }

kill "$pid" 2>/dev/null || true
wait "$pid" 2>/dev/null || true
echo "incident smoke OK"
