#!/usr/bin/env bash
# scripts/bench.sh — run the solver/serving benchmark set with -benchmem and
# emit a machine-readable JSON baseline, so every perf PR can diff its
# before/after numbers against the committed trajectory (BENCH_PR3.json
# holds PR 3's pair, BENCH_PR4.json PR 4's streaming-delta pair,
# BENCH_PR5.json PR 5's mass-handoff pair, BENCH_PR6.json PR 6's traced
# serving numbers; later PRs append their own files).
#
# Usage:
#   scripts/bench.sh            # human output to stderr, JSON to stdout
#   scripts/bench.sh out.json   # ... and the JSON also written to out.json
#   BENCHTIME=5s scripts/bench.sh
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHES='^(BenchmarkOptimizeWeighted|BenchmarkOptimizeDeadline|BenchmarkServeCold|BenchmarkServeCached|BenchmarkServeWarmStart|BenchmarkServeWarmStartAllocOnly|BenchmarkServeTraced|BenchmarkServeBatch|BenchmarkClusterRoutedCached|BenchmarkStreamDelta|BenchmarkStreamRepostCold|BenchmarkMassHandoff|BenchmarkHandoffPerDevice)$'
BENCHTIME="${BENCHTIME:-2s}"

# Churn smoke: the elastic-cluster loadgen with cells added and drained
# mid-replay — membership changes, mass migrations and epoch rerouting all
# race live traffic. Failures (lost requests, ErrStaleSeq leaks) abort the
# bench run; the stats line lands on stderr next to the benchmark output.
go run ./cmd/flcluster -loadgen 600 -cells 3 -devices 12 -n 8 -conc 4 -churn 3 >&2

# Crash smoke: the same loadgen with drain-less cell removals instead —
# replicated warm state is promoted onto the survivors while the replay
# races the membership change.
go run ./cmd/flcluster -loadgen 600 -cells 3 -devices 12 -n 8 -conc 4 -crash 2 >&2

out="$(go test -run '^$' -bench "$BENCHES" -benchmem -benchtime "$BENCHTIME" -count 1 .)"
echo "$out" >&2

json="$(echo "$out" | awk '
BEGIN { printf "{\n"; sep = "" }
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)  # strip the GOMAXPROCS suffix
    printf "%s  \"%s\": {", sep, name
    sep = ",\n"
    inner = ""
    for (i = 3; i + 1 <= NF; i += 2) {
        unit = $(i + 1)
        gsub(/\//, "_per_", unit)
        gsub(/[^a-zA-Z0-9_]/, "_", unit)
        printf "%s\"%s\": %s", inner, unit, $i
        inner = ", "
    }
    printf "}"
}
END { printf "\n}\n" }
')"

echo "$json"
if [ $# -ge 1 ]; then
    echo "$json" > "$1"
fi
