package repro_test

import (
	"bytes"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
	"time"

	"repro"
)

// hygieneStack composes the full flcluster serving stack — cluster router,
// stream manager, control plane, health evaluator, obs middleware and the
// telemetry exporter/aggregator pair — exactly as cmd/flcluster wires it,
// so the /metrics exposition under test is the one operators scrape.
func hygieneStack(t *testing.T) http.Handler {
	t.Helper()
	col := repro.NewObsCollector(repro.ObsConfig{SampleEvery: 1, SlowThreshold: -1})
	agg := repro.NewTelemetryAggregator(repro.TelemetryAggregatorConfig{})
	exp := repro.NewTelemetryExporter(repro.TelemetryExporterConfig{Origin: "hygiene", Local: agg})
	col.SetSink(exp.Enqueue)
	t.Cleanup(func() { exp.Close() })

	cl := repro.NewCluster(repro.ClusterConfig{Cells: 2, Cell: repro.ServeConfig{Workers: 1}})
	t.Cleanup(cl.Close)
	mgr := repro.NewStreamManager(repro.NewStreamClusterBackend(cl), repro.StreamConfig{Trace: col})
	t.Cleanup(func() { mgr.Close() })
	plane := repro.NewControlPlane(cl, mgr)
	ev := repro.NewHealthEvaluator(repro.HealthConfig{Source: repro.HealthRouterSource(cl), Tick: time.Hour})

	mc := repro.ObsMiddlewareConfig{
		Traces: repro.TelemetryTracesHandler(col, agg),
		Spans:  agg.IngestHandler(),
		StatsSections: map[string]func() any{
			"telemetry": func() any {
				return map[string]any{"exporter": exp.StatsJSON(), "aggregator": agg.StatsJSON()}
			},
		},
		Metrics: []func(io.Writer) error{exp.WritePrometheus, agg.WritePrometheus},
	}
	return repro.ObsMiddlewareWith(col, mc, ev.Handler(plane.Handler(repro.StreamHandler(mgr))))
}

var metricNameRE = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

// TestMetricsHygiene scrapes the composed stack's /metrics after real
// traffic and checks exposition discipline: snake_case names, exactly one
// HELP and one TYPE per family, and no duplicate name+labels series — the
// invariant that keeps the exporter/aggregator/health/serve emitters from
// colliding when one process runs all of them.
func TestMetricsHygiene(t *testing.T) {
	h := hygieneStack(t)
	ts := httptest.NewServer(h)
	defer ts.Close()

	// Drive one routed solve so phase histograms, exemplars and the
	// convergence observatory all have content to emit.
	sc := repro.DefaultScenario()
	sc.N = 6
	s, err := sc.Build(rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	req := repro.SolveRequestJSON{System: repro.SystemToJSON(s), DeviceID: "hyg-0"}
	req.Weights.W1, req.Weights.W2 = 0.5, 0.5
	body, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/v1/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve status %d", resp.StatusCode)
	}

	mr, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mr.Body.Close()
	raw, err := io.ReadAll(mr.Body)
	if err != nil {
		t.Fatal(err)
	}

	help := map[string]int{}
	typ := map[string]int{}
	series := map[string]int{}
	for _, line := range strings.Split(string(raw), "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			if len(fields) < 4 {
				t.Fatalf("malformed comment line %q", line)
			}
			name := fields[2]
			if !metricNameRE.MatchString(name) {
				t.Errorf("metric family %q is not snake_case", name)
			}
			if fields[1] == "HELP" {
				help[name]++
			} else {
				typ[name]++
			}
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("unexpected comment line %q", line)
		}
		// Sample line: name{labels} value [# {exemplar} value]. Strip the
		// OpenMetrics exemplar before keying the series.
		sample := line
		if i := strings.Index(sample, " # {"); i >= 0 {
			sample = sample[:i]
		}
		var key, name string
		if i := strings.Index(sample, "{"); i >= 0 {
			j := strings.LastIndex(sample, "}")
			if j < i {
				t.Fatalf("malformed sample line %q", line)
			}
			name, key = sample[:i], sample[:j+1]
		} else {
			fields := strings.Fields(sample)
			name, key = fields[0], fields[0]
		}
		if !metricNameRE.MatchString(name) {
			t.Errorf("series name %q is not snake_case", name)
		}
		series[key]++
		// Every sample must belong to a family announced by TYPE.
		base := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if trimmed := strings.TrimSuffix(name, suffix); trimmed != name && typ[trimmed] > 0 {
				base = trimmed
				break
			}
		}
		if typ[base] == 0 {
			t.Errorf("series %q has no TYPE line", name)
		}
	}
	if len(series) == 0 {
		t.Fatal("no series in exposition")
	}
	for name, n := range help {
		if n != 1 {
			t.Errorf("HELP for %q appears %d times", name, n)
		}
		if typ[name] != 1 {
			t.Errorf("TYPE for %q appears %d times", name, typ[name])
		}
	}
	for name, n := range typ {
		if help[name] != 1 {
			t.Errorf("TYPE %q lacks a single HELP (%d)", name, help[name])
		}
		_ = n
	}
	for key, n := range series {
		if n != 1 {
			t.Errorf("duplicate series %q emitted %d times", key, n)
		}
	}

	// The telemetry plane's own families must be present: the exporter and
	// aggregator register disjoint names even when one process runs both.
	for _, want := range []string{
		"obs_spans_exported_total", "obs_spans_dropped_total",
		"obs_span_batches_received_total", "obs_assembled_traces",
	} {
		if typ[want] != 1 {
			t.Errorf("missing telemetry family %q in exposition", want)
		}
	}
}
