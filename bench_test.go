package repro_test

// Benchmark harness: one benchmark per figure of the paper's evaluation
// (each regenerates the figure's full sweep with one random draw per point;
// run cmd/experiments for averaged, human-readable tables), plus
// micro-benchmarks of the core solver stages.

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"

	"repro"
)

func benchCfg() repro.RunConfig { return repro.RunConfig{Trials: 1, Seed: 1} }

// BenchmarkFig2 regenerates Figs. 2a/2b: energy & delay vs p_max, five
// weight pairs + random benchmark.
func BenchmarkFig2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := repro.Fig2(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3 regenerates Figs. 3a/3b: energy & delay vs f_max.
func BenchmarkFig3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := repro.Fig3(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4 regenerates Figs. 4a/4b: energy & delay vs N.
func BenchmarkFig4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := repro.Fig4(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5 regenerates Figs. 5a/5b: energy & delay vs radius.
func BenchmarkFig5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := repro.Fig5(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6 regenerates Figs. 6a/6b: energy & delay vs R_l and R_g.
func BenchmarkFig6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := repro.Fig6(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7 regenerates Fig. 7: energy vs completion-time limit,
// proposed vs communication-only vs computation-only.
func BenchmarkFig7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := repro.Fig7(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8 regenerates Fig. 8: energy vs p_max under fixed deadlines,
// proposed vs Scheme 1.
func BenchmarkFig8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := repro.Fig8(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOptimizeWeighted measures one full Algorithm 2 run at the
// paper's default N = 50 and balanced weights.
func BenchmarkOptimizeWeighted(b *testing.B) {
	sc := repro.DefaultScenario()
	s, err := sc.Build(rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := repro.Optimize(s, repro.Weights{W1: 0.5, W2: 0.5}, repro.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOptimizeDeadline measures the dual-decomposition deadline solve
// (the Figs. 7-8 workhorse) at N = 50.
func BenchmarkOptimizeDeadline(b *testing.B) {
	sc := repro.DefaultScenario()
	s, err := sc.Build(rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := repro.Optimize(s, repro.Weights{W1: 1, W2: 0},
			repro.Options{Mode: repro.ModeDeadline, TotalDeadline: 120}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMinCompletionTime measures the min-max time waterfilling.
func BenchmarkMinCompletionTime(b *testing.B) {
	sc := repro.DefaultScenario()
	s, err := sc.Build(rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := repro.MinCompletionTime(s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScheme1 measures the Scheme 1 baseline at N = 50.
func BenchmarkScheme1(b *testing.B) {
	sc := repro.DefaultScenario()
	s, err := sc.Build(rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := repro.Scheme1(s, 120); err != nil {
			b.Fatal(err)
		}
	}
}

// serveBenchSystem builds the N=15 deployment shared by the serving
// benchmarks (small enough that per-iteration solves keep b.N reasonable).
func serveBenchSystem(b *testing.B) *repro.System {
	b.Helper()
	sc := repro.DefaultScenario()
	sc.N = 15
	s, err := sc.Build(rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// driftBench multiplies every gain by a fresh log-normal factor, forcing a
// new exact fingerprint while keeping the topology bucket.
func driftBench(s *repro.System, sigma float64, rng *rand.Rand) *repro.System {
	out := *s
	out.Devices = append([]repro.Device(nil), s.Devices...)
	for i := range out.Devices {
		out.Devices[i].Gain *= math.Exp(sigma * rng.NormFloat64())
	}
	return &out
}

// BenchmarkServeCold measures the serving path with both the cache and the
// warm-start index disabled: every request is a from-scratch solve.
func BenchmarkServeCold(b *testing.B) {
	base := serveBenchSystem(b)
	srv := repro.NewServer(repro.ServeConfig{DisableCache: true, DisableWarmStart: true})
	defer srv.Close()
	rng := rand.New(rand.NewSource(2))
	w := repro.Weights{W1: 0.5, W2: 0.5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := driftBench(base, 0.3, rng)
		if _, err := srv.Solve(context.Background(), repro.ServeRequest{System: s, Weights: w}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServeCached measures repeated identical requests: after the
// first solve every iteration is an exact-fingerprint cache hit.
func BenchmarkServeCached(b *testing.B) {
	s := serveBenchSystem(b)
	srv := repro.NewServer(repro.ServeConfig{})
	defer srv.Close()
	w := repro.Weights{W1: 0.5, W2: 0.5}
	if _, err := srv.Solve(context.Background(), repro.ServeRequest{System: s, Weights: w}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := srv.Solve(context.Background(), repro.ServeRequest{System: s, Weights: w}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServeWarmStart measures drifted requests with full warm starts:
// every iteration misses the exact fingerprint but seeds Algorithm 2 with
// the topology bucket's cached allocation AND its Subproblem 2 dual state,
// so the seeded solves skip their Newton iterations (reported as the
// newton/op metric).
func BenchmarkServeWarmStart(b *testing.B) {
	benchServeWarm(b, repro.ServeConfig{}, nil)
}

// BenchmarkServeWarmStartAllocOnly is the same drifted stream with the dual
// seed disabled: the warm start carries only the allocation, and every
// solve re-runs its Newton iteration. The gap to BenchmarkServeWarmStart
// (ns/op and newton/op) is what dual-state caching buys.
func BenchmarkServeWarmStartAllocOnly(b *testing.B) {
	benchServeWarm(b, repro.ServeConfig{DisableDualSeed: true}, nil)
}

// BenchmarkServeTraced is BenchmarkServeWarmStart with the full telemetry
// plane live: a collector at the default 1-in-16 sampling starts and
// finishes one solve-lifecycle trace per iteration, the server records
// fingerprint/cache/queue/solve spans into it, and every finished trace is
// exported through a span exporter into a local aggregator (the
// single-process assembly path) AND folded into the always-on flight
// recorder, exactly as the serving cmds wire it. The gap to
// BenchmarkServeWarmStart (the nil-collector fast path) is the tracing +
// export + flight-event overhead.
func BenchmarkServeTraced(b *testing.B) {
	col := repro.NewObsCollector(repro.ObsConfig{})
	agg := repro.NewTelemetryAggregator(repro.TelemetryAggregatorConfig{})
	exp := repro.NewTelemetryExporter(repro.TelemetryExporterConfig{Origin: "bench", Local: agg})
	flight := repro.NewFlightRecorder(0)
	col.SetSink(func(t repro.ObsTraceJSON) {
		exp.Enqueue(t)
		flight.Observe(t)
	})
	defer exp.Close()
	benchServeWarm(b, repro.ServeConfig{}, col)
}

func benchServeWarm(b *testing.B, cfg repro.ServeConfig, col *repro.ObsCollector) {
	b.Helper()
	base := serveBenchSystem(b)
	srv := repro.NewServer(cfg)
	defer srv.Close()
	rng := rand.New(rand.NewSource(2))
	w := repro.Weights{W1: 0.5, W2: 0.5}
	if _, err := srv.Solve(context.Background(), repro.ServeRequest{System: base, Weights: w}); err != nil {
		b.Fatal(err)
	}
	var newton int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := driftBench(base, 0.3, rng)
		ctx, tr := col.StartTrace(context.Background())
		resp, err := srv.Solve(ctx, repro.ServeRequest{System: s, Weights: w})
		tr.Finish()
		if err != nil {
			b.Fatal(err)
		}
		for _, it := range resp.Result.Iterations {
			newton += it.NewtonIters
		}
	}
	b.ReportMetric(float64(newton)/float64(b.N), "newton/op")
}

// BenchmarkServeBatch measures the amortized batch path: each op posts one
// SolveBatch of serveBatchSize drifted instances at bulk priority (so ns/op
// is per batch; divide by serveBatchSize for per-instance cost).
func BenchmarkServeBatch(b *testing.B) {
	const serveBatchSize = 16
	base := serveBenchSystem(b)
	srv := repro.NewServer(repro.ServeConfig{})
	defer srv.Close()
	rng := rand.New(rand.NewSource(2))
	w := repro.Weights{W1: 0.5, W2: 0.5}
	if _, err := srv.Solve(context.Background(), repro.ServeRequest{System: base, Weights: w}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reqs := make([]repro.ServeRequest, serveBatchSize)
		for j := range reqs {
			reqs[j] = repro.ServeRequest{System: driftBench(base, 0.3, rng), Weights: w}
		}
		for j, it := range srv.SolveBatch(context.Background(), reqs, repro.ServePriorityBulk) {
			if it.Err != nil {
				b.Fatalf("batch item %d: %v", j, it.Err)
			}
		}
	}
	b.ReportMetric(serveBatchSize, "inst/op")
}

// streamBenchSystem builds the N=50 deployment of the streaming benchmarks:
// the paper's default population, where re-POSTing the whole system per
// 3-gain drift is the most wasteful (the regime the subsystem targets).
func streamBenchSystem(b *testing.B) *repro.System {
	b.Helper()
	sc := repro.DefaultScenario()
	s, err := sc.Build(rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// streamBenchSetup opens one delta session over the full wrapped HTTP stack
// (server + stream manager + httptest) and returns the base URL, session ID
// and a cleanup.
func streamBenchSetup(b *testing.B, base *repro.System) (string, string, func()) {
	b.Helper()
	srv := repro.NewServer(repro.ServeConfig{})
	mgr := repro.NewStreamManager(repro.NewStreamServeBackend(srv), repro.StreamConfig{})
	ts := httptest.NewServer(repro.StreamHandler(mgr))
	cleanup := func() {
		ts.Close()
		mgr.Close()
		srv.Close()
	}
	req := repro.SolveRequestJSON{System: repro.SystemToJSON(base)}
	req.Weights.W1, req.Weights.W2 = 0.5, 0.5
	body, err := json.Marshal(req)
	if err != nil {
		b.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/stream", "application/json", bytes.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b.Fatalf("open session: status %d", resp.StatusCode)
	}
	var open repro.StreamOpenResponseJSON
	if err := json.NewDecoder(resp.Body).Decode(&open); err != nil {
		b.Fatal(err)
	}
	return ts.URL, open.SessionID, cleanup
}

// sparseDriftDelta drifts k random gains of s in place and returns the
// delta wire form carrying their new absolute values.
func sparseDriftDelta(s *repro.System, seq uint64, k int, sigma float64, rng *rand.Rand) repro.StreamDeltaJSON {
	d := repro.StreamDeltaJSON{Seq: seq, Gains: make(map[int]float64, k)}
	for len(d.Gains) < k {
		i := rng.Intn(s.N())
		if _, ok := d.Gains[i]; ok {
			continue
		}
		g := s.Devices[i].Gain * math.Exp(sigma*rng.NormFloat64())
		d.Gains[i] = g
		s.Devices[i].Gain = g
	}
	return d
}

// BenchmarkStreamDelta measures the streaming subsystem on its canonical
// workload — a per-device gain-delta stream: each op posts ONE NDJSON delta
// carrying one drifted gain of the N=50 system to an open session and reads
// the re-solve back. The session re-fingerprints incrementally; a drift
// that leaves its quantization bucket re-solves seeded with the topology
// bucket's allocation + SP2 dual state (0 Newton iterations — newton/op
// reports the average), and one that stays inside is answered from the
// solution cache (warm/op counts both reuse paths). Its counterpart
// BenchmarkStreamRepostCold pays the full client re-POST + cold solve for
// the identical drift stream.
func BenchmarkStreamDelta(b *testing.B) {
	base := streamBenchSystem(b)
	url, session, cleanup := streamBenchSetup(b, base)
	defer cleanup()
	rng := rand.New(rand.NewSource(2))
	var newton, warm int
	seq := uint64(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seq++
		body, err := json.Marshal(sparseDriftDelta(base, seq, 1, 0.05, rng))
		if err != nil {
			b.Fatal(err)
		}
		resp, err := http.Post(url+"/v1/stream/"+session+"/deltas", repro.StreamNDJSONContentType, bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		var u repro.StreamUpdateJSON
		err = json.NewDecoder(resp.Body).Decode(&u)
		resp.Body.Close()
		if err != nil {
			b.Fatal(err)
		}
		if !u.OK || u.Result == nil {
			b.Fatalf("delta %d: %+v", seq, u)
		}
		newton += u.Result.NewtonIters
		if u.Result.Source == string(repro.ServeSourceWarm) || u.Result.Source == string(repro.ServeSourceCache) {
			warm++
		}
	}
	b.ReportMetric(float64(newton)/float64(b.N), "newton/op")
	b.ReportMetric(float64(warm)/float64(b.N), "warm/op")
}

// massHandoffSetup builds a 2-cell cluster with `devices` distinct devices
// served (and pinned) in cell 0, each with one cached solution, a warm
// allocation and a dual state to migrate. A stub solver keeps the setup
// about migration machinery, not solve time: the benchmarks move state,
// they never re-solve it.
func massHandoffSetup(b *testing.B, devices int) (*repro.Cluster, []string) {
	b.Helper()
	const n = 12
	stub := func(s *repro.System, w repro.Weights, o repro.Options) (repro.Result, error) {
		res := repro.Result{Duals: &repro.DualState{Mu: 1, Nu: make([]float64, s.N()), Beta: make([]float64, s.N())}}
		res.Allocation.Power = make([]float64, s.N())
		res.Allocation.Bandwidth = make([]float64, s.N())
		res.Allocation.Freq = make([]float64, s.N())
		for i, d := range s.Devices {
			res.Allocation.Power[i] = d.PMax
			res.Allocation.Bandwidth[i] = s.Bandwidth / float64(s.N())
			res.Allocation.Freq[i] = d.FMax
			res.Duals.Nu[i], res.Duals.Beta[i] = 1, 1
		}
		return res, nil
	}
	cl := repro.NewCluster(repro.ClusterConfig{
		Cells:      2,
		Cell:       repro.ServeConfig{Workers: 2, CacheEntries: 2 * devices, Solver: stub},
		MaxDevices: 2 * devices,
	})
	b.Cleanup(cl.Close)

	sc := repro.DefaultScenario()
	sc.N = n
	base, err := sc.Build(rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	devs := make([]string, devices)
	w := repro.Weights{W1: 0.5, W2: 0.5}
	for d := range devs {
		devs[d] = "ue-" + strconv.Itoa(d)
		// Distinct gains per device: every device owns its own fingerprint.
		if _, _, err := cl.Solve(context.Background(), 0, devs[d], repro.ServeRequest{System: driftBench(base, 0.3, rng), Weights: w}); err != nil {
			b.Fatal(err)
		}
	}
	return cl, devs
}

// BenchmarkMassHandoff measures the batched mass-mobility migration: per
// op, ONE MassHandoff call moves all 1000 devices' cached solutions, warm
// allocations and dual state to the other cell (directions alternate so
// every op moves the full population). One routing-lock acquisition and
// one bulk extract/inject per cell, recorded fingerprints reused — compare
// BenchmarkHandoffPerDevice, which migrates the identical population
// through the sequential per-device Handoff loop the control plane
// replaces.
func BenchmarkMassHandoff(b *testing.B) {
	const devices = 1000
	cl, devs := massHandoffSetup(b, devices)
	there := make([]repro.ClusterMove, devices)
	back := make([]repro.ClusterMove, devices)
	for d, dev := range devs {
		there[d] = repro.ClusterMove{DeviceID: dev, To: 1}
		back[d] = repro.ClusterMove{DeviceID: dev, To: 0}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		moves := there
		if i%2 == 1 {
			moves = back
		}
		rep, err := cl.MassHandoff(context.Background(), moves, true)
		if err != nil {
			b.Fatal(err)
		}
		if rep.MigratedResults != devices {
			b.Fatalf("op %d migrated %d results, want %d", i, rep.MigratedResults, devices)
		}
	}
	b.ReportMetric(devices, "dev/op")
}

// BenchmarkHandoffPerDevice is the pre-control-plane equivalent of
// BenchmarkMassHandoff: the same 1000-device population migrated by
// calling Handoff once per device — per device, two full instance
// re-fingerprints, a routing-lock round trip and per-entry cache
// operations. The gap to BenchmarkMassHandoff is what batching buys a
// mass-mobility event (ns/op is per full 1000-device migration in both).
func BenchmarkHandoffPerDevice(b *testing.B) {
	const devices = 1000
	cl, devs := massHandoffSetup(b, devices)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		from, to := 0, 1
		if i%2 == 1 {
			from, to = 1, 0
		}
		migrated := 0
		for _, dev := range devs {
			rep, err := cl.Handoff(context.Background(), dev, from, to)
			if err != nil {
				b.Fatal(err)
			}
			migrated += rep.MigratedResults
		}
		if migrated != devices {
			b.Fatalf("op %d migrated %d results, want %d", i, migrated, devices)
		}
	}
	b.ReportMetric(devices, "dev/op")
}

// BenchmarkStreamRepostCold is the same drifting workload served the
// pre-stream way: the client re-POSTs the ENTIRE system to /v1/solve for
// every single-gain drift, and the server (cache and warm starts disabled,
// as for a stateless client whose every instance is new to the server)
// solves cold. The gap to BenchmarkStreamDelta is what the delta subsystem
// buys end to end.
func BenchmarkStreamRepostCold(b *testing.B) {
	base := streamBenchSystem(b)
	srv := repro.NewServer(repro.ServeConfig{DisableCache: true, DisableWarmStart: true})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	rng := rand.New(rand.NewSource(2))
	seq := uint64(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seq++
		sparseDriftDelta(base, seq, 1, 0.05, rng) // identical drift stream
		req := repro.SolveRequestJSON{System: repro.SystemToJSON(base)}
		req.Weights.W1, req.Weights.W2 = 0.5, 0.5
		body, err := json.Marshal(req)
		if err != nil {
			b.Fatal(err)
		}
		resp, err := http.Post(ts.URL+"/v1/solve", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		var out repro.SolveResponseJSON
		err = json.NewDecoder(resp.Body).Decode(&out)
		resp.Body.Close()
		if err != nil {
			b.Fatal(err)
		}
		if out.Source != string(repro.ServeSourceCold) {
			b.Fatalf("repost source %q, want cold", out.Source)
		}
	}
}

// BenchmarkFedAvgRound measures one FedAvg aggregation round (20 devices,
// 500 samples each, 5 local iterations, dim 9).
func BenchmarkFedAvgRound(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	ds, _ := repro.SyntheticLogistic(rng, 20*500, 8, 0.05)
	shards, err := repro.SplitEqual(ds, 20)
	if err != nil {
		b.Fatal(err)
	}
	cfg := repro.FedAvgConfig{LocalIters: 5, GlobalRounds: 1, LearningRate: 0.5, Dim: 9}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := repro.TrainFedAvg(cfg, shards, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClusterRoutedCached measures the multi-cell router's hit path:
// device-routed requests answered from the pinned cell's solution cache
// (router overhead = fingerprint + pin lookup on top of the cache read).
func BenchmarkClusterRoutedCached(b *testing.B) {
	s := serveBenchSystem(b)
	cl := repro.NewCluster(repro.ClusterConfig{Cells: 4})
	defer cl.Close()
	w := repro.Weights{W1: 0.5, W2: 0.5}
	req := repro.ServeRequest{System: s, Weights: w}
	if _, _, err := cl.Solve(context.Background(), repro.ClusterCellAuto, "bench-dev", req); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := cl.Solve(context.Background(), repro.ClusterCellAuto, "bench-dev", req); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClusterHandoff measures one cross-cell device handoff carrying
// a full per-device history (8 instances re-fingerprinted and migrated),
// ping-ponging the device between two cells.
func BenchmarkClusterHandoff(b *testing.B) {
	base := serveBenchSystem(b)
	cl := repro.NewCluster(repro.ClusterConfig{Cells: 2})
	defer cl.Close()
	rng := rand.New(rand.NewSource(2))
	w := repro.Weights{W1: 0.5, W2: 0.5}
	for i := 0; i < 8; i++ {
		s := driftBench(base, 0.3, rng)
		if _, _, err := cl.Solve(context.Background(), 0, "bench-dev", repro.ServeRequest{System: s, Weights: w}); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		from, to := i%2, (i+1)%2
		if _, err := cl.Handoff(context.Background(), "bench-dev", from, to); err != nil {
			b.Fatal(err)
		}
	}
}
