package repro_test

// Benchmark harness: one benchmark per figure of the paper's evaluation
// (each regenerates the figure's full sweep with one random draw per point;
// run cmd/experiments for averaged, human-readable tables), plus
// micro-benchmarks of the core solver stages.

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"repro"
)

func benchCfg() repro.RunConfig { return repro.RunConfig{Trials: 1, Seed: 1} }

// BenchmarkFig2 regenerates Figs. 2a/2b: energy & delay vs p_max, five
// weight pairs + random benchmark.
func BenchmarkFig2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := repro.Fig2(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3 regenerates Figs. 3a/3b: energy & delay vs f_max.
func BenchmarkFig3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := repro.Fig3(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4 regenerates Figs. 4a/4b: energy & delay vs N.
func BenchmarkFig4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := repro.Fig4(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5 regenerates Figs. 5a/5b: energy & delay vs radius.
func BenchmarkFig5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := repro.Fig5(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6 regenerates Figs. 6a/6b: energy & delay vs R_l and R_g.
func BenchmarkFig6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := repro.Fig6(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7 regenerates Fig. 7: energy vs completion-time limit,
// proposed vs communication-only vs computation-only.
func BenchmarkFig7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := repro.Fig7(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8 regenerates Fig. 8: energy vs p_max under fixed deadlines,
// proposed vs Scheme 1.
func BenchmarkFig8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := repro.Fig8(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOptimizeWeighted measures one full Algorithm 2 run at the
// paper's default N = 50 and balanced weights.
func BenchmarkOptimizeWeighted(b *testing.B) {
	sc := repro.DefaultScenario()
	s, err := sc.Build(rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := repro.Optimize(s, repro.Weights{W1: 0.5, W2: 0.5}, repro.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOptimizeDeadline measures the dual-decomposition deadline solve
// (the Figs. 7-8 workhorse) at N = 50.
func BenchmarkOptimizeDeadline(b *testing.B) {
	sc := repro.DefaultScenario()
	s, err := sc.Build(rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := repro.Optimize(s, repro.Weights{W1: 1, W2: 0},
			repro.Options{Mode: repro.ModeDeadline, TotalDeadline: 120}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMinCompletionTime measures the min-max time waterfilling.
func BenchmarkMinCompletionTime(b *testing.B) {
	sc := repro.DefaultScenario()
	s, err := sc.Build(rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := repro.MinCompletionTime(s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScheme1 measures the Scheme 1 baseline at N = 50.
func BenchmarkScheme1(b *testing.B) {
	sc := repro.DefaultScenario()
	s, err := sc.Build(rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := repro.Scheme1(s, 120); err != nil {
			b.Fatal(err)
		}
	}
}

// serveBenchSystem builds the N=15 deployment shared by the serving
// benchmarks (small enough that per-iteration solves keep b.N reasonable).
func serveBenchSystem(b *testing.B) *repro.System {
	b.Helper()
	sc := repro.DefaultScenario()
	sc.N = 15
	s, err := sc.Build(rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// driftBench multiplies every gain by a fresh log-normal factor, forcing a
// new exact fingerprint while keeping the topology bucket.
func driftBench(s *repro.System, sigma float64, rng *rand.Rand) *repro.System {
	out := *s
	out.Devices = append([]repro.Device(nil), s.Devices...)
	for i := range out.Devices {
		out.Devices[i].Gain *= math.Exp(sigma * rng.NormFloat64())
	}
	return &out
}

// BenchmarkServeCold measures the serving path with both the cache and the
// warm-start index disabled: every request is a from-scratch solve.
func BenchmarkServeCold(b *testing.B) {
	base := serveBenchSystem(b)
	srv := repro.NewServer(repro.ServeConfig{DisableCache: true, DisableWarmStart: true})
	defer srv.Close()
	rng := rand.New(rand.NewSource(2))
	w := repro.Weights{W1: 0.5, W2: 0.5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := driftBench(base, 0.3, rng)
		if _, err := srv.Solve(context.Background(), repro.ServeRequest{System: s, Weights: w}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServeCached measures repeated identical requests: after the
// first solve every iteration is an exact-fingerprint cache hit.
func BenchmarkServeCached(b *testing.B) {
	s := serveBenchSystem(b)
	srv := repro.NewServer(repro.ServeConfig{})
	defer srv.Close()
	w := repro.Weights{W1: 0.5, W2: 0.5}
	if _, err := srv.Solve(context.Background(), repro.ServeRequest{System: s, Weights: w}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := srv.Solve(context.Background(), repro.ServeRequest{System: s, Weights: w}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServeWarmStart measures drifted requests with full warm starts:
// every iteration misses the exact fingerprint but seeds Algorithm 2 with
// the topology bucket's cached allocation AND its Subproblem 2 dual state,
// so the seeded solves skip their Newton iterations (reported as the
// newton/op metric).
func BenchmarkServeWarmStart(b *testing.B) {
	benchServeWarm(b, repro.ServeConfig{})
}

// BenchmarkServeWarmStartAllocOnly is the same drifted stream with the dual
// seed disabled: the warm start carries only the allocation, and every
// solve re-runs its Newton iteration. The gap to BenchmarkServeWarmStart
// (ns/op and newton/op) is what dual-state caching buys.
func BenchmarkServeWarmStartAllocOnly(b *testing.B) {
	benchServeWarm(b, repro.ServeConfig{DisableDualSeed: true})
}

func benchServeWarm(b *testing.B, cfg repro.ServeConfig) {
	b.Helper()
	base := serveBenchSystem(b)
	srv := repro.NewServer(cfg)
	defer srv.Close()
	rng := rand.New(rand.NewSource(2))
	w := repro.Weights{W1: 0.5, W2: 0.5}
	if _, err := srv.Solve(context.Background(), repro.ServeRequest{System: base, Weights: w}); err != nil {
		b.Fatal(err)
	}
	var newton int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := driftBench(base, 0.3, rng)
		resp, err := srv.Solve(context.Background(), repro.ServeRequest{System: s, Weights: w})
		if err != nil {
			b.Fatal(err)
		}
		for _, it := range resp.Result.Iterations {
			newton += it.NewtonIters
		}
	}
	b.ReportMetric(float64(newton)/float64(b.N), "newton/op")
}

// BenchmarkServeBatch measures the amortized batch path: each op posts one
// SolveBatch of serveBatchSize drifted instances at bulk priority (so ns/op
// is per batch; divide by serveBatchSize for per-instance cost).
func BenchmarkServeBatch(b *testing.B) {
	const serveBatchSize = 16
	base := serveBenchSystem(b)
	srv := repro.NewServer(repro.ServeConfig{})
	defer srv.Close()
	rng := rand.New(rand.NewSource(2))
	w := repro.Weights{W1: 0.5, W2: 0.5}
	if _, err := srv.Solve(context.Background(), repro.ServeRequest{System: base, Weights: w}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reqs := make([]repro.ServeRequest, serveBatchSize)
		for j := range reqs {
			reqs[j] = repro.ServeRequest{System: driftBench(base, 0.3, rng), Weights: w}
		}
		for j, it := range srv.SolveBatch(context.Background(), reqs, repro.ServePriorityBulk) {
			if it.Err != nil {
				b.Fatalf("batch item %d: %v", j, it.Err)
			}
		}
	}
	b.ReportMetric(serveBatchSize, "inst/op")
}

// BenchmarkFedAvgRound measures one FedAvg aggregation round (20 devices,
// 500 samples each, 5 local iterations, dim 9).
func BenchmarkFedAvgRound(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	ds, _ := repro.SyntheticLogistic(rng, 20*500, 8, 0.05)
	shards, err := repro.SplitEqual(ds, 20)
	if err != nil {
		b.Fatal(err)
	}
	cfg := repro.FedAvgConfig{LocalIters: 5, GlobalRounds: 1, LearningRate: 0.5, Dim: 9}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := repro.TrainFedAvg(cfg, shards, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClusterRoutedCached measures the multi-cell router's hit path:
// device-routed requests answered from the pinned cell's solution cache
// (router overhead = fingerprint + pin lookup on top of the cache read).
func BenchmarkClusterRoutedCached(b *testing.B) {
	s := serveBenchSystem(b)
	cl := repro.NewCluster(repro.ClusterConfig{Cells: 4})
	defer cl.Close()
	w := repro.Weights{W1: 0.5, W2: 0.5}
	req := repro.ServeRequest{System: s, Weights: w}
	if _, _, err := cl.Solve(context.Background(), repro.ClusterCellAuto, "bench-dev", req); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := cl.Solve(context.Background(), repro.ClusterCellAuto, "bench-dev", req); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClusterHandoff measures one cross-cell device handoff carrying
// a full per-device history (8 instances re-fingerprinted and migrated),
// ping-ponging the device between two cells.
func BenchmarkClusterHandoff(b *testing.B) {
	base := serveBenchSystem(b)
	cl := repro.NewCluster(repro.ClusterConfig{Cells: 2})
	defer cl.Close()
	rng := rand.New(rand.NewSource(2))
	w := repro.Weights{W1: 0.5, W2: 0.5}
	for i := 0; i < 8; i++ {
		s := driftBench(base, 0.3, rng)
		if _, _, err := cl.Solve(context.Background(), 0, "bench-dev", repro.ServeRequest{System: s, Weights: w}); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		from, to := i%2, (i+1)%2
		if _, err := cl.Handoff("bench-dev", from, to); err != nil {
			b.Fatal(err)
		}
	}
}
